"""Process-parallel rank execution with deterministic barriers.

``EngineConfig.workers = N`` fans the per-rank work of each tick —
``SimulationEngine._rank_tick``, detector waves, mailbox flushes,
cache/spill epoch drains — out to a persistent pool of forked worker
processes, one fork per :meth:`SimulationEngine.run`.  The contract is the
one the race detector polices: within a tick, rank ``r`` touches only rank
``r``'s queue, mailbox, ghost table, caches and detector, and the only
cross-rank traffic is mailbox packets.  That makes rank execution
embarrassingly parallel *between* the engine's barriers, and the barriers
are where determinism is re-established:

* **Static rank affinity.**  Worker ``w`` owns ranks ``{r : r % W == w}``
  for the whole run, so every per-rank RNG stream, cache, spill pager and
  detector lives in exactly one process and advances exactly as it would
  sequentially.

* **Fork + shared memory.**  The pool is forked *after* engine
  construction, so workers inherit the fully-built engine copy-on-write
  (graph, CSR, topology — nothing is pickled to start a run).  In batch
  mode each rank's SoA state arrays are first rebound onto anonymous
  ``MAP_SHARED`` arenas (:class:`repro.core.batch.SharedArrayBlock`), so
  worker writes land in pages the parent reads — final states come back
  zero-copy.  Object-path states are pickled back once, at finalize.

* **Deterministic merge.**  Workers never talk to the real fabric; their
  mailboxes are rewired to a :class:`_StubNetwork` that records packets in
  emission order, bucketed per phase (mid-tick eager flushes, detector
  wave, end-of-tick flush).  At the barrier the parent replays the buckets
  into the real :class:`~repro.comm.network.Network` /
  :class:`~repro.comm.reliable.ReliableTransport` in exactly the
  sequential global send order — for each rank in ``_rank_order``: phase-A
  packets; then the rank-0 wave packets; then for each rank in
  ``_rank_order``: phase-B packets — so sequence stamps, the fault
  injector's single decision stream, wire counters and order digests are
  bit-identical to ``workers=1``.  Counter deltas and spill/cache charges
  are likewise folded in ascending rank order with the sequential
  per-rank float-addition order preserved.

Checkpoints snapshot rank-local state *inside* the owning worker (the
snapshot never crosses the process boundary; only its simulated byte size
does), and crash replay re-executes the logged ticks in the owning worker
while the parent interleaves transport notes and replayed sends per tick —
see :class:`ParallelRecoveryManager`.

Worker supervision (INTERNALS §12)
----------------------------------
Without supervision, a worker failure of any kind (exception, abrupt
death) surfaces as :class:`~repro.errors.WorkerCrash`, which the engine
converts into a :class:`~repro.errors.TraversalError` carrying the partial
stats, matching the ``max_ticks`` behaviour.  With supervision active
(``worker_restarts > 0`` or a ``worker_faults`` plan), the
:class:`WorkerSupervisor` makes the pool *self-healing* instead:

* **Detection.**  Every barrier receive carries a wall-clock deadline
  (``worker_barrier_timeout``, scaled by the tick's arrival volume and by
  replay length); pipe EOF / process death classify a failure as a
  *crash*, a missed deadline as a *hang* (the wedged process is
  force-killed).  Worker-reported exceptions keep their traceback and
  surface as ``kind="error"``.

* **Respawn and replay.**  At every supervision epoch the workers ship
  full per-rank state *images* (queue, mailbox, detector, spill pager,
  caches, spill ledger) to the parent alongside their local snapshots.  A
  failed worker is forked again from the parent, restored from the latest
  images, and replays the logged arrival ticks up to the last completed
  barrier — re-running any *simulated* rank-crash recoveries recorded in
  that window, so cumulative counters (which carry replay
  double-increments) land bit-identically.  Replay is
  simulation-invisible: stub packets are discarded (the real fabric
  already carried them) and the epoch drains are thrown away.  Respawns
  are paced by a seeded exponential backoff and bounded by
  ``worker_restarts``.

* **Graceful degradation.**  When the restart budget is exhausted (or
  ``fork`` itself fails), the parent adopts the dead worker's images
  itself and absorbs the orphaned ranks into its own in-process tick
  loop; the run completes — slower, never wrong.

* **Pricing.**  Restarts, image restores and replayed compute are charged
  through the machine model into ``TraversalStats.supervision_us`` —
  deliberately *not* into ``time_us``: the simulated cluster never
  failed, only host processes did, so the simulated clock and every
  logical counter stay bit-identical to the unfailed run (the chaos suite
  compares full stats minus exactly
  :data:`~repro.runtime.trace.SUPERVISION_STATS_FIELDS`).

Injected worker faults (:class:`~repro.comm.faults.WorkerFaultPlan`) ride
the tick command as directives: ``kill`` SIGKILLs the worker before it
does the tick's work, ``hang`` completes the work and then sleeps past the
deadline, ``exita`` hard-exits mid-phase-A, and ``forkfail`` consumes
respawn attempts parent-side.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _mp_wait
from typing import TYPE_CHECKING

import numpy as np

from repro.comm.message import Packet
from repro.core.batch import SharedArrayBlock, share_state_arrays
from repro.errors import ConfigurationError, TraversalError, WorkerCrash
from repro.runtime.durability import collect_rank_section
from repro.runtime.packet_codec import (
    UnframeablePayload,
    decode_ints,
    decode_packets,
    encode_ints,
    encode_packets,
)
from repro.runtime.recovery import RecoveryManager, estimate_checkpoint_bytes
from repro.runtime.shm_ring import RingIntegrityError, SpscRing
from repro.utils.rng import resolve_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import SimulationEngine

__all__ = [
    "ParallelRecoveryManager",
    "RankTickReport",
    "WorkerCrash",
    "WorkerPool",
    "WorkerSupervisor",
]

#: Barrier deadline when supervision is active and the user gave none.
DEFAULT_BARRIER_TIMEOUT_S = 30.0
#: Supervision image cadence (ticks) when no recovery manager drives it.
SUPERVISION_EPOCH_TICKS = 16
#: Seeded exponential respawn backoff: base doubles per attempt, capped.
_BACKOFF_BASE_S = 0.02
_BACKOFF_CAP_S = 0.5
#: Arrival-packet volume one deadline unit is assumed to cover.
_DEADLINE_PACKETS = 50_000


class _StubNetwork:
    """Packet recorder standing in for the fabric inside a worker.

    Workers must not touch the real network — sequence stamping, fault
    injection and delivery scheduling are parent-side — so their mailboxes
    get this collector instead; :meth:`take` cuts the emission-ordered
    stream into the per-phase buckets the parent's barrier merge replays.
    """

    __slots__ = ("_packets",)

    def __init__(self) -> None:
        self._packets: list[Packet] = []

    def send_packet(self, packet: Packet) -> None:
        self._packets.append(packet)

    def take(self) -> list[Packet]:
        out = self._packets
        self._packets = []
        return out


@dataclass(slots=True)
class RankTickReport:
    """One rank's barrier contribution for one tick (worker -> parent)."""

    #: control envelopes handled (charged like pre-visits).
    controls: int
    #: cumulative (previsits, visits, edges_scanned, pushes, ghost_filtered,
    #: packets_sent, bytes_sent, visitors_sent, visitors_received).
    counters: tuple[int, int, int, int, int, int, int, int, int]
    #: packets emitted during ``_rank_tick`` (mid-tick eager flushes).
    packets_a: list[Packet]
    #: packets emitted by the end-of-tick ``flush()``.
    packets_b: list[Packet]
    #: this tick's cache epoch drain (simulated us) and fault record.
    cache_us: float
    cache_faults: object | None
    #: this tick's spill-pager drain (simulated us) and fault record.
    spill_us: float
    spill_faults: object | None
    #: cumulative backpressure stalls / cache hit/miss totals.
    bp_stalls: int
    cache_hits: int
    cache_misses: int
    #: end-of-tick termination inputs.
    queue_len: int
    quiet: bool
    buffered: bool
    buffered_visitors: int
    terminated: bool
    #: drained order-probe sequence (None unless digests are recorded).
    probe: tuple[int, ...] | None
    #: simulated durable-checkpoint byte size of this rank's state, taken
    #: worker-side after ``sync_spill`` (0 when no durable dir is set).
    ckpt_bytes: int = 0


# ---------------------------------------------------------------------- #
# Pipe framing & shared-memory ring transport (INTERNALS §14)
# ---------------------------------------------------------------------- #
#: Per-direction ring capacity.  16 MiB holds hundreds of ticks of frame
#: traffic for the bench workloads; a tick that does not fit spills to the
#: pickled pipe, which is always correct.  Module-level so tests can
#: shrink it to force the overflow path.
RING_BYTES = 1 << 24

#: First byte of every pipe message: a pickled envelope or a fixed token.
_TAG_PICKLE = 0
_TAG_TOKEN = 1
#: Pickled-envelope header: tag + number of out-of-band buffers following.
_PICKLE_HDR = struct.Struct("<BI")
#: Token opcodes (second byte).
_TOK_TICK = 1
_TOK_OK = 2
#: Parent -> worker tick token: tag, op, tick, n arrival frames, directive.
_TICK_TOKEN = struct.Struct("<BBqIB")
#: Worker -> parent barrier token: tag, op, n frames, flags (bit 0 = a
#: pickled residue envelope follows on the pipe).
_OK_TOKEN = struct.Struct("<BBIB")
_OK_RESIDUE = 1

#: Injected-fault directives, encoded into the tick token.
_DIRECTIVE_CODES = {None: 0, "kill": 1, "hang": 2, "exita": 3}
_DIRECTIVE_NAMES = {v: k for k, v in _DIRECTIVE_CODES.items()}

#: Frame-tag channels: ``tag = channel << 16 | rank``.
_CH_ARRIVALS = 1
_CH_PACKETS_A = 2
_CH_WAVE = 3
_CH_PACKETS_B = 4
_CH_PROBE = 5


def _frame_tag(channel: int, rank: int = 0) -> int:
    return (channel << 16) | rank


#: Shared counters-table layout: one row per rank, fixed columns, so the
#: scalar half of a :class:`RankTickReport` crosses the process boundary
#: as plain stores into a shared arena (zero pickled bytes).
_TBL_I64_COLS = 19
_TI_CONTROLS = 0
_TI_COUNTERS_LO, _TI_COUNTERS_HI = 1, 10  # the cumulative 9-tuple
_TI_BP_STALLS = 10
_TI_CACHE_HITS = 11
_TI_CACHE_MISSES = 12
_TI_QUEUE_LEN = 13
_TI_QUIET = 14
_TI_BUFFERED = 15
_TI_BUFFERED_VISITORS = 16
_TI_TERMINATED = 17
_TI_CKPT_BYTES = 18
_TBL_F64_COLS = 2
_TF_CACHE_US = 0
_TF_SPILL_US = 1


@dataclass
class _RingLinks:
    """One worker's shared-memory attachments, created parent-side before
    the fork and inherited through it (never pickled)."""

    #: worker -> parent frame ring (barrier reports).
    tx: SpscRing
    #: parent -> worker frame ring (tick arrivals).
    rx: SpscRing
    #: per-rank scalar report columns (shared by all workers; each writes
    #: only its owned rows).
    table_i: np.ndarray
    table_f: np.ndarray


def _send_obj(conn, obj) -> int:
    """Ship one python object over the pipe as a tagged pickle-5 envelope
    with out-of-band buffers (numpy columns and checkpoint images cross as
    raw bytes instead of being copied into the pickle stream).  Returns
    the pickled byte count for the telemetry counters."""
    buffers: list = []
    body = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    conn.send_bytes(_PICKLE_HDR.pack(_TAG_PICKLE, len(buffers)) + body)
    total = _PICKLE_HDR.size + len(body)
    for buf in buffers:
        raw = buf.raw()
        conn.send_bytes(raw)
        total += raw.nbytes
    return total


def _recv_obj_tail(conn, first: bytes) -> tuple[object, int]:
    """Finish receiving a pickled envelope whose first pipe message is
    ``first``: collect the out-of-band buffers, then unpickle.  Buffers
    are copied into ``bytearray`` so restored numpy arrays are writable
    (restore paths mutate them in place).  Returns ``(obj, bytes)``."""
    tag, n_buffers = _PICKLE_HDR.unpack_from(first, 0)
    total = len(first)
    buffers: list[bytearray] = []
    for _ in range(n_buffers):
        raw = conn.recv_bytes()
        total += len(raw)
        buffers.append(bytearray(raw))
    obj = pickle.loads(first[_PICKLE_HDR.size:], buffers=buffers)
    return obj, total


def _worker_recv(conn) -> tuple[str, object]:
    """Worker-side receive: ``("tok", raw_bytes)`` for a fixed-size token,
    ``("obj", message)`` for a pickled command."""
    data = conn.recv_bytes()
    if data[0] == _TAG_TOKEN:
        return "tok", data
    return "obj", _recv_obj_tail(conn, data)[0]


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
def _store_report_scalars(links: _RingLinks, r: int, rep: RankTickReport) -> None:
    """Write the scalar half of one rank's report into its shared
    counters-table row (the parent reads it back after the OK token)."""
    row = links.table_i[r]
    row[_TI_CONTROLS] = rep.controls
    row[_TI_COUNTERS_LO:_TI_COUNTERS_HI] = rep.counters
    row[_TI_BP_STALLS] = rep.bp_stalls
    row[_TI_CACHE_HITS] = rep.cache_hits
    row[_TI_CACHE_MISSES] = rep.cache_misses
    row[_TI_QUEUE_LEN] = rep.queue_len
    row[_TI_QUIET] = int(rep.quiet)
    row[_TI_BUFFERED] = int(rep.buffered)
    row[_TI_BUFFERED_VISITORS] = rep.buffered_visitors
    row[_TI_TERMINATED] = int(rep.terminated)
    row[_TI_CKPT_BYTES] = rep.ckpt_bytes
    links.table_f[r, _TF_CACHE_US] = rep.cache_us
    links.table_f[r, _TF_SPILL_US] = rep.spill_us


def _ship_tick_ring(conn, links: _RingLinks, out) -> None:
    """Ship one tick's barrier output over the ring: scalars into the
    counters table, packet/probe columns as ring frames, then the OK
    token.  All-or-nothing — the frames are encoded and costed *before*
    anything is written, so an unframeable payload or a full ring spills
    the whole tick to the pickled pipe without desyncing the frame
    sequence.  Fault records (rare; storage fault plans only) ride a
    pickled residue envelope after the token."""
    reports, wave_packets = out
    frames: list[tuple[int, bytes]] | None = []
    try:
        for r, rep in reports.items():
            if rep.packets_a:
                frames.append(
                    (_frame_tag(_CH_PACKETS_A, r), encode_packets(rep.packets_a))
                )
        if wave_packets:
            frames.append((_frame_tag(_CH_WAVE), encode_packets(wave_packets)))
        for r, rep in reports.items():
            if rep.packets_b:
                frames.append(
                    (_frame_tag(_CH_PACKETS_B, r), encode_packets(rep.packets_b))
                )
            if rep.probe is not None:
                frames.append((_frame_tag(_CH_PROBE, r), encode_ints(rep.probe)))
    except UnframeablePayload:
        frames = None
    if frames is not None:
        need = sum(SpscRing.frame_cost(len(p)) for _, p in frames)
        if need > links.tx.free():
            frames = None
    if frames is None:
        # Whole-tick spill: the pickled residue is the exact pipe-mode
        # reply, so the parent replays it bit-identically.
        conn.send_bytes(_OK_TOKEN.pack(_TAG_TOKEN, _TOK_OK, 0, _OK_RESIDUE))
        _send_obj(conn, ("ok", {"spill": out}))
        return
    faults: dict[int, tuple] = {}
    for r, rep in reports.items():
        _store_report_scalars(links, r, rep)
        if rep.cache_faults is not None or rep.spill_faults is not None:
            faults[r] = (rep.cache_faults, rep.spill_faults)
    for tag, payload in frames:
        links.tx.write(tag, payload)
    flags = _OK_RESIDUE if faults else 0
    conn.send_bytes(_OK_TOKEN.pack(_TAG_TOKEN, _TOK_OK, len(frames), flags))
    if faults:
        _send_obj(conn, ("ok", {"faults": faults}))


def _worker_main(
    engine: "SimulationEngine",
    owned: list[int],
    conn,
    seed_ranks: bool = True,
    links: _RingLinks | None = None,
) -> None:
    """Entry point of one forked worker (owns ``owned`` ranks for life).

    ``seed_ranks=False`` marks a supervision *respawn*: the replacement is
    forked from the parent mid-run, so its inherited rank state is a stale
    fork-time copy; it sends a bare ready and waits for the ``restore``
    command to adopt the latest epoch images before rejoining barriers.

    ``links`` carries the shared-memory ring attachments (inherited
    through the fork).  Commands arrive either as fixed-size tokens (the
    ring fast path: arrivals are frames in ``links.rx``, the reply goes
    back through ``links.tx``) or as pickled envelopes (control plane and
    correctness fallback) — the worker always replies in the transport
    the command arrived on.
    """
    try:
        stub = _StubNetwork()
        for r in owned:
            engine.mailboxes[r].network = stub
        owned_set = frozenset(owned)
        snaps: dict[int, dict] = {}
        # Durable resume: the parent transplanted each rank's recovery
        # snapshot half before forking; adopt the owned ones so a later
        # simulated rank-crash replays from the pre-kill epoch.
        for r in owned:
            snap = engine._resume_recovery_snaps.get(r)
            if snap is not None:
                snaps[r] = dict(snap)

        if seed_ranks:
            # Seed the owned ranks (ascending, like the sequential path);
            # any eager-flush packets are shipped for the parent to replay
            # in natural rank order before the first tick.
            seed_packets: dict[int, list[Packet]] = {}
            for r in owned:
                if engine.batch_mode:
                    seed = engine.algorithm.initial_batch(engine.graph, r)
                    if seed is not None:
                        engine.ranks[r].push_batch(seed)
                else:
                    for visitor in engine.algorithm.initial_visitors(engine.graph, r):
                        engine.ranks[r].push(visitor)
                seed_packets[r] = stub.take()
            _send_obj(conn, ("ready", seed_packets))
        else:
            _send_obj(conn, ("ready", {}))

        parent_pid = os.getppid()
        while True:
            # Host-crash hygiene: a SIGKILLed parent never closes our pipe
            # (sibling workers hold inherited duplicates of every parent
            # end), so a blocking recv would orphan this process forever —
            # poll, and exit when reparented.  ``poll`` returns the moment
            # a command arrives, so the live path is unthrottled.
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    os._exit(0)
            kind, msg = _worker_recv(conn)
            if kind == "tok":
                # Ring fast path: the whole tick command is one fixed-size
                # token; arrivals are frames already sitting in the ring.
                _, op, t, n_frames, dcode = _TICK_TOKEN.unpack(msg)
                if op != _TOK_TICK:  # pragma: no cover - protocol guard
                    raise RuntimeError(f"unknown worker token op {op}")
                inject = _DIRECTIVE_NAMES[dcode]
                if inject == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                arrivals: dict[int, list[Packet]] = {}
                for _ in range(n_frames):
                    tag, payload = links.rx.read()
                    arrivals[tag & 0xFFFF] = decode_packets(payload)
                out = _worker_tick(
                    engine, stub, owned, owned_set, arrivals,
                    exit_mid_phase_a=(inject == "exita"),
                )
                if inject == "hang":
                    while True:  # hang *before* the barrier reply
                        time.sleep(1.0)
                _ship_tick_ring(conn, links, out)
                continue
            cmd = msg[0]
            if cmd == "tick":
                inject = msg[2]
                if inject == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                out = _worker_tick(
                    engine, stub, owned, owned_set, msg[1],
                    exit_mid_phase_a=(inject == "exita"),
                )
                if inject == "hang":
                    while True:  # hang *before* the barrier reply
                        time.sleep(1.0)
                _send_obj(conn, ("ok", out))
            elif cmd == "checkpoint":
                _send_obj(
                    conn, ("ok", _worker_checkpoint(engine, owned, snaps, ship=msg[1]))
                )
            elif cmd == "restore":
                _send_obj(conn, ("ok", _adopt_images(engine, stub, *msg[1:], snaps=snaps)))
            elif cmd == "replay":
                _send_obj(conn, ("ok", _worker_replay(engine, stub, snaps, *msg[1:])))
            elif cmd == "durable":
                _send_obj(conn, ("ok", _worker_durable(engine, owned, snaps)))
            elif cmd == "finalize":
                _send_obj(conn, ("ok", _worker_finalize(engine, owned, owned_set)))
            elif cmd == "stop":
                break
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown worker command {cmd!r}")
    except BaseException as exc:  # noqa: BLE001 - everything must cross the pipe
        try:
            _send_obj(conn, ("error", repr(exc), traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


def _worker_tick(
    engine: "SimulationEngine",
    stub: _StubNetwork,
    owned: list[int],
    owned_set: frozenset,
    arrivals: dict[int, list[Packet]],
    *,
    exit_mid_phase_a: bool = False,
) -> tuple[dict[int, RankTickReport], list[Packet] | None]:
    """One tick's owned-rank work: phase A, wave (rank-0 owner), phase B,
    then the per-rank epoch drains and termination inputs."""
    cfg = engine.config
    order = [r for r in engine._rank_order if r in owned_set]
    controls: dict[int, int] = {}
    packets_a: dict[int, list[Packet]] = {}
    for idx, r in enumerate(order):
        controls[r] = engine._rank_tick(r, arrivals.get(r, []))
        packets_a[r] = stub.take()
        if exit_mid_phase_a and idx == 0:
            # Injected mid-phase death: partial state mutations stay behind
            # (batch arenas are shared) — exactly what restore must undo.
            os._exit(13)

    # The wave only reads and mutates rank 0's detector/mailbox, so running
    # it before *other workers'* phase A completes is unobservable; it is
    # sequenced exactly between this worker's phase A and phase B, as the
    # sequential loop sequences it for rank 0.
    wave_packets: list[Packet] | None = None
    detectors = engine.detectors
    if 0 in owned_set and detectors is not None and not detectors[0].terminated:
        detectors[0].maybe_start_wave()
        wave_packets = stub.take()

    reports: dict[int, RankTickReport] = {}
    for r in order:
        engine.mailboxes[r].flush()
        packets_b = stub.take()
        rank = engine.ranks[r]
        mailbox = engine.mailboxes[r]
        c = rank.counters
        cache = engine.caches[r]
        cache_us = 0.0
        cache_faults = None
        if cache is not None:
            cache_us = cache.drain_epoch_us(concurrency=cfg.io_concurrency)
            cache_faults = cache.last_epoch_faults
        spill = engine.spills[r]
        spill_us = 0.0
        spill_faults = None
        if spill is not None:
            if cfg.queue_spill is not None:
                rank.sync_spill(spill, cfg.queue_spill)
            spill_us = spill.drain_epoch_us(concurrency=cfg.io_concurrency)
            spill_faults = spill.cache.last_epoch_faults
        probe = None
        if engine._record_digests:
            probe = tuple(rank.order_probe)
            rank.order_probe.clear()
        reports[r] = RankTickReport(
            controls=controls[r],
            counters=(
                c.previsits, c.visits, c.edges_scanned, c.pushes,
                c.ghost_filtered, mailbox.packets_sent, mailbox.bytes_sent,
                mailbox.visitors_sent, mailbox.visitors_received,
            ),
            packets_a=packets_a[r],
            packets_b=packets_b,
            cache_us=cache_us,
            cache_faults=cache_faults,
            spill_us=spill_us,
            spill_faults=spill_faults,
            bp_stalls=mailbox.bp_stalls,
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
            queue_len=rank.queue_length(),
            quiet=rank.locally_quiet(),
            buffered=mailbox.has_buffered(),
            buffered_visitors=mailbox.buffered_visitor_count(),
            terminated=(
                engine.detectors[r].terminated
                if engine.detectors is not None
                else True
            ),
            probe=probe,
            ckpt_bytes=(
                estimate_checkpoint_bytes(engine, r)
                if engine.durable is not None
                else 0
            ),
        )
    return reports, wave_packets


def _worker_checkpoint(
    engine: "SimulationEngine",
    owned: list[int],
    snaps: dict[int, dict],
    ship: bool = False,
) -> tuple[dict[int, int], dict[int, dict] | None]:
    """Snapshot the owned ranks' restartable state locally; ship only the
    simulated checkpoint byte sizes — unless ``ship`` (supervision
    active), in which case full restore *images* cross the pipe too: the
    crash-recovery snapshot plus everything a replacement process forked
    from the parent cannot reconstruct (spill pager, caches, spill
    ledger)."""
    out: dict[int, int] = {}
    images: dict[int, dict] | None = {} if ship else None
    for r in owned:
        snap = {
            "queue": engine.ranks[r].snapshot_state(),
            "mailbox": engine.mailboxes[r].snapshot_state(),
        }
        if engine.detectors is not None:
            snap["detector"] = engine.detectors[r].snapshot_state()
        snaps[r] = snap
        out[r] = estimate_checkpoint_bytes(engine, r)
        if ship:
            img = dict(snap)
            img["spilled_visitors"] = engine.ranks[r].spill_ledger
            if engine.caches[r] is not None:
                img["cache"] = engine.caches[r].snapshot_state()
            if engine.spills[r] is not None:
                img["spill"] = engine.spills[r].snapshot_state()
            images[r] = img
    return out, images


def _supervision_counters(
    engine: "SimulationEngine", owned: list[int]
) -> tuple[int, int, int, int, int]:
    """Summed cumulative (previsits, visits, edges, packets, bytes) over
    ``owned`` — the before/after pair supervision replay is priced from."""
    pv = vi = es = ps = bs = 0
    for r in owned:
        c = engine.ranks[r].counters
        mb = engine.mailboxes[r]
        pv += c.previsits
        vi += c.visits
        es += c.edges_scanned
        ps += mb.packets_sent
        bs += mb.bytes_sent
    return (pv, vi, es, ps, bs)


def _adopt_images(
    engine: "SimulationEngine",
    stub: _StubNetwork,
    images: dict[int, dict],
    epoch_tick: int,
    upto_tick: int,
    logs: dict[int, dict[int, tuple]],
    recoveries: dict[int, list],
    snaps: dict[int, dict],
) -> tuple[tuple, tuple, int, int]:
    """Restore epoch images for a rank set and replay through ``upto_tick``.

    Shared by the respawned worker's ``restore`` command and the parent's
    graceful-degradation absorb.  Restores every image in place (shared
    batch arenas survive; a dead worker's partial writes are overwritten),
    repopulates ``snaps`` with the crash-recovery subset, then re-executes
    ticks ``epoch_tick+1 .. upto_tick`` from the logged arrivals — first
    re-running any recorded *simulated* rank-crash recoveries scheduled at
    that tick, so cumulative counters reproduce the replay residue the
    original worker carried.  All emitted packets, epoch drains and order
    probes are discarded: the fabric already carried this work at the
    original barriers.  Returns ``(c0, c1, controls, replayed)`` for
    parent-side pricing (``c0`` taken *after* restore, so the delta is
    exactly the replayed compute).
    """
    cfg = engine.config
    owned = sorted(images)
    owned_set = frozenset(owned)
    for r in owned:
        engine.mailboxes[r].network = stub
        img = images[r]
        if "spill" in img:
            engine.spills[r].restore_state(img["spill"])
        if "cache" in img:
            engine.caches[r].restore_state(img["cache"])
        engine.ranks[r].restore_state(img["queue"])
        engine.ranks[r].spill_ledger = img["spilled_visitors"]
        engine.mailboxes[r].restore_state(img["mailbox"])
        if engine.detectors is not None:
            engine.detectors[r].restore_state(img["detector"])
        snaps[r] = {k: img[k] for k in ("queue", "mailbox", "detector") if k in img}
    c0 = _supervision_counters(engine, owned)
    order = [r for r in engine._rank_order if r in owned_set]
    detectors = engine.detectors
    controls = 0
    replayed = 0
    for t in range(epoch_tick + 1, upto_tick + 1):
        for r in order:
            for crash_tick, ep, lg in recoveries.get(r, ()):
                if crash_tick == t:
                    # The simulated recovery ran *before* this tick's work
                    # (the transport detects the crash while delivering the
                    # tick's arrivals); outputs are discarded, only the
                    # counter residue matters.
                    out = _worker_replay(engine, stub, snaps, r, ep, t, lg)
                    replayed += out[4]
        for r in order:
            controls += engine._rank_tick(r, list(logs.get(r, {}).get(t, ())))
            stub.take()
        if 0 in owned_set and detectors is not None and not detectors[0].terminated:
            detectors[0].maybe_start_wave()
            stub.take()
        for r in order:
            engine.mailboxes[r].flush()
            spill = engine.spills[r]
            if spill is not None and cfg.queue_spill is not None:
                engine.ranks[r].sync_spill(spill, cfg.queue_spill)
            stub.take()
        replayed += 1
    for r in owned:
        # Throw the replay's epoch accumulators away in one drain — the
        # original barriers already charged these epochs, and draining
        # zeroes the same counters whether done per tick or at the end.
        if engine.caches[r] is not None:
            engine.caches[r].drain_epoch_us(concurrency=cfg.io_concurrency)
        if engine.spills[r] is not None:
            engine.spills[r].drain_epoch_us(concurrency=cfg.io_concurrency)
        if engine._record_digests and engine.ranks[r].order_probe is not None:
            engine.ranks[r].order_probe.clear()
    return c0, _supervision_counters(engine, owned), controls, replayed


def _worker_replay(
    engine: "SimulationEngine",
    stub: _StubNetwork,
    snaps: dict[int, dict],
    r: int,
    epoch_tick: int,
    crash_tick: int,
    log: dict[int, list[Packet]],
) -> tuple[list[list[Packet]], tuple, tuple, int, int]:
    """Crash recovery for owned rank ``r``: reinstall the epoch snapshot
    and re-execute the logged ticks, returning the per-tick emitted packet
    streams plus the counter deltas the parent prices replay compute from.
    Mirrors :meth:`RecoveryManager.restore_and_replay` rank-locally."""
    snap = snaps.get(r)
    if snap is None:
        raise TraversalError(
            f"rank {r} crashed at tick {crash_tick} with no worker-side "
            f"checkpoint to restore"
        )
    engine.ranks[r].restore_state(snap["queue"])
    engine.mailboxes[r].restore_state(snap["mailbox"])
    if engine.detectors is not None:
        engine.detectors[r].restore_state(snap["detector"])

    def counter_tuple() -> tuple[int, int, int, int, int]:
        c = engine.ranks[r].counters
        mb = engine.mailboxes[r]
        return (c.previsits, c.visits, c.edges_scanned, mb.packets_sent, mb.bytes_sent)

    c0 = counter_tuple()
    controls = 0
    replayed = 0
    per_tick_packets: list[list[Packet]] = []
    detectors = engine.detectors
    for t in range(epoch_tick + 1, crash_tick):
        packets = log.get(t, [])
        controls += engine._rank_tick(r, list(packets))
        if r == 0 and detectors is not None and not detectors[0].terminated:
            detectors[0].maybe_start_wave()
        engine.mailboxes[r].flush()
        per_tick_packets.append(stub.take())
        replayed += 1
    return per_tick_packets, c0, counter_tuple(), controls, replayed


def _worker_durable(
    engine: "SimulationEngine", owned: list[int], snaps: dict[int, dict]
) -> dict[int, dict]:
    """Collect the owned ranks' durable epoch sections (full restartable
    state, crossing the pipe — unlike recovery snapshots, durable epochs
    must survive the death of every process)."""
    return {
        r: collect_rank_section(engine, r, recovery_snap=snaps.get(r))
        for r in owned
    }


def _worker_finalize(
    engine: "SimulationEngine", owned: list[int], owned_set: frozenset
) -> tuple[dict, dict, int | None]:
    """End-of-run accounting for the owned ranks: sync mailbox counters,
    fold cache totals, ship the counters (and object-path states)."""
    counters: dict[int, object] = {}
    states: dict[int, object] = {}
    for r in owned:
        rank = engine.ranks[r]
        rank.sync_mailbox_counters()
        cache = engine.caches[r]
        if cache is not None:
            rank.counters.cache_hits = cache.hits
            rank.counters.cache_misses = cache.misses
            rank.counters.cache_evictions = cache.evictions
        counters[r] = rank.counters
        if not engine.batch_mode:
            states[r] = rank.states
    waves = None
    if 0 in owned_set and engine.detectors is not None:
        waves = engine.detectors[0].waves_participated
    return counters, states, waves


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #
class WorkerPool:
    """Persistent forked worker pool for one :meth:`SimulationEngine.run`.

    Forked in the constructor — after the engine is fully built and (in
    batch mode) after the state arrays are rebound onto shared arenas — so
    every worker's engine copy is bit-identical to the parent's by
    construction.

    The pool is pure *transport*: fork, send, receive-with-deadline,
    kill, respawn, reap.  Failure classification happens here (every
    receive path raises a structured :class:`~repro.errors.WorkerCrash`);
    the recovery *policy* lives in :class:`WorkerSupervisor`.  Use as a
    context manager so no child processes outlive a parent-side error::

        with WorkerPool(engine) as pool:
            ...
    """

    def __init__(self, engine: "SimulationEngine", seed_ranks: bool = True) -> None:
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise ConfigurationError(
                "workers > 1 requires the 'fork' multiprocessing start "
                "method (POSIX); run with workers=1 on this platform"
            )
        ctx = mp.get_context("fork")
        p = engine.graph.num_partitions
        w = min(engine.config.workers, p)
        self._engine = engine
        self._ctx = ctx
        self.owned: list[list[int]] = [
            [r for r in range(p) if r % w == i] for i in range(w)
        ]
        self.owner: list[int] = [r % w for r in range(p)]
        self.blocks: list[SharedArrayBlock] = []
        if engine.batch_mode:
            for rank in engine.ranks:
                block = share_state_arrays(rank.states)
                if block is not None:
                    self.blocks.append(block)

        #: Zero-pickle barrier transport (INTERNALS §14).  Only the batch
        #: path emits frameable payloads, so the object path silently
        #: stays on the pickled pipes whatever the config says.
        self.use_ring: bool = (
            engine.config.ipc_transport == "ring" and engine.batch_mode
        )
        self.rings_tx: list[SpscRing] = []  # worker -> parent
        self.rings_rx: list[SpscRing] = []  # parent -> worker
        self._links: list[_RingLinks | None] = []
        self._table_block: SharedArrayBlock | None = None
        self._table_i: np.ndarray | None = None
        self._table_f: np.ndarray | None = None
        if self.use_ring:
            self._table_block = SharedArrayBlock(
                [
                    ("i64", np.zeros((p, _TBL_I64_COLS), dtype=np.int64)),
                    ("f64", np.zeros((p, _TBL_F64_COLS), dtype=np.float64)),
                ]
            )
            self._table_i = self._table_block.view("i64")
            self._table_f = self._table_block.view("f64")

        #: Host-side IPC telemetry (see :meth:`ipc_counters`).
        self.ipc_bytes_pickled = 0
        self.ipc_tick_bytes_pickled = 0
        self.ipc_frame_bytes = 0
        self.ipc_ring_spills = 0
        self.ipc_pipe_fallbacks = 0
        self.barrier_seconds = 0.0

        self._procs = []
        self._conns = []
        #: liveness according to the last observation (updated by
        #: :meth:`recv` / :meth:`kill` / :meth:`respawn`).
        self.alive: list[bool] = []
        for i in range(w):
            links = None
            if self.use_ring:
                tx = SpscRing(RING_BYTES)
                rx = SpscRing(RING_BYTES)
                self.rings_tx.append(tx)
                self.rings_rx.append(rx)
                links = _RingLinks(
                    tx=tx, rx=rx, table_i=self._table_i, table_f=self._table_f
                )
            self._links.append(links)
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(engine, self.owned[i], child_conn, seed_ranks, links),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self.alive.append(True)

    @property
    def num_workers(self) -> int:
        return len(self._procs)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    # -------------------------------------------------------------- #
    def _who(self, i: int) -> str:
        return f"worker {i} (ranks {self.owned[i]})"

    def send(self, i: int, message: tuple, *, tick: bool = False) -> None:
        """Send one pickled command to worker ``i`` (protocol 5, columns
        and images as out-of-band buffers); a dead pipe raises a
        structured :class:`~repro.errors.WorkerCrash` instead of leaking
        ``BrokenPipeError``.  ``tick`` marks barrier tick traffic for the
        zero-pickle telemetry."""
        try:
            n = _send_obj(self._conns[i], message)
        except (BrokenPipeError, OSError, ValueError) as exc:
            self.alive[i] = False
            raise WorkerCrash(
                f"{self._who(i)} is gone (send failed: {exc})",
                worker=i, ranks=self.owned[i], kind="crash",
                exitcode=self._procs[i].exitcode,
            ) from exc
        self.ipc_bytes_pickled += n
        if tick:
            self.ipc_tick_bytes_pickled += n

    def send_tick(
        self,
        i: int,
        t: int,
        arrivals: dict[int, list[Packet]],
        directive: str | None,
    ) -> None:
        """Fan tick ``t`` out to worker ``i`` — the zero-pickle fast path
        when the ring transport is on: arrival packets go into the
        worker's rx ring as SoA frames (ascending rank, so the worker can
        key them without an index) and the command itself is one
        fixed-size token.  Unframeable arrivals or a full ring fall back
        to the pickled pipe command, which is always correct."""
        links = self._links[i]
        if links is not None:
            frames: list[tuple[int, bytes]] | None = []
            try:
                for r in sorted(arrivals):
                    frames.append(
                        (_frame_tag(_CH_ARRIVALS, r), encode_packets(arrivals[r]))
                    )
            except UnframeablePayload:
                frames = None
            if frames is not None:
                need = sum(SpscRing.frame_cost(len(p)) for _, p in frames)
                if need > links.rx.free():
                    frames = None
            if frames is not None:
                for tag, payload in frames:
                    links.rx.write(tag, payload)
                    self.ipc_frame_bytes += len(payload)
                token = _TICK_TOKEN.pack(
                    _TAG_TOKEN, _TOK_TICK, t, len(frames),
                    _DIRECTIVE_CODES[directive],
                )
                try:
                    self._conns[i].send_bytes(token)
                except (BrokenPipeError, OSError, ValueError) as exc:
                    self.alive[i] = False
                    raise WorkerCrash(
                        f"{self._who(i)} is gone (send failed: {exc})",
                        worker=i, ranks=self.owned[i], kind="crash",
                        exitcode=self._procs[i].exitcode,
                    ) from exc
                return
            self.ipc_ring_spills += 1
        self.send(i, ("tick", arrivals, directive), tick=True)

    def _recv_bytes(self, i: int, deadline_s: float | None, start: float):
        """Block until worker ``i``'s pipe has one message and return its
        raw bytes, classifying failures.  No busy loop: the wait parks in
        ``multiprocessing.connection.wait`` on the pipe *and* the process
        sentinel, so an idle barrier burns no CPU the workers need and a
        dying worker wakes the parent immediately."""
        conn = self._conns[i]
        proc = self._procs[i]
        who = self._who(i)
        while True:
            timeout = None
            if deadline_s is not None:
                # Host-side failure detection; wall-clock never touches
                # the simulated schedule (a hang is replayed
                # deterministically).
                elapsed = time.monotonic() - start  # repro-lint: disable=RPR002 -- host-side barrier deadline, simulation-invisible
                timeout = deadline_s - elapsed
                if timeout <= 0:
                    self.kill(i)
                    raise WorkerCrash(
                        f"{who} missed the barrier deadline "
                        f"({deadline_s:.1f}s); force-killed",
                        worker=i, ranks=self.owned[i], kind="hang",
                    )
            ready = _mp_wait([conn, proc.sentinel], timeout)
            if conn in ready:
                try:
                    return conn.recv_bytes()
                except (EOFError, OSError) as exc:
                    self.alive[i] = False
                    raise WorkerCrash(
                        f"{who} closed its pipe mid-reply",
                        worker=i, ranks=self.owned[i], kind="crash",
                        exitcode=proc.exitcode,
                    ) from exc
            if ready:  # sentinel only: the process died
                if conn.poll(0):
                    continue  # its last reply is still buffered — read it
                self.alive[i] = False
                proc.join(timeout=5.0)
                raise WorkerCrash(
                    f"{who} died (exitcode {proc.exitcode})",
                    worker=i, ranks=self.owned[i], kind="crash",
                    exitcode=proc.exitcode,
                )

    def recv(self, i: int, deadline_s: float | None = None, *, tick: bool = False):
        """Receive one reply from worker ``i`` — a pickled envelope, or
        (ring transport) a fixed-size OK token whose payload is decoded
        from the worker's tx ring and the shared counters table.

        Raises :class:`~repro.errors.WorkerCrash` classified as:

        * ``kind="error"`` — the worker reported an exception (its
          traceback rides along in ``worker_traceback``), or its ring
          frames failed integrity validation (torn/stale frames);
        * ``kind="crash"`` — pipe EOF or process death (``exitcode`` set);
        * ``kind="hang"`` — no reply within ``deadline_s`` wall-clock
          seconds; the wedged process is force-killed first, so the pipe
          is dead by the time the caller sees the exception.

        Without a deadline the wait is indefinite but never busy-hangs on
        a dead process.
        """
        who = self._who(i)
        start = time.monotonic()  # repro-lint: disable=RPR002 -- host-side barrier deadline, simulation-invisible
        try:
            data = self._recv_bytes(i, deadline_s, start)
            if data[0] == _TAG_TOKEN:
                _, op, n_frames, flags = _OK_TOKEN.unpack(data)
                if op != _TOK_OK:  # pragma: no cover - protocol guard
                    raise WorkerCrash(
                        f"{who} sent an unknown token op {op}",
                        worker=i, ranks=self.owned[i], kind="error",
                    )
                residue = None
                if flags & _OK_RESIDUE:
                    first = self._recv_bytes(i, deadline_s, start)
                    obj, n = _recv_obj_tail(self._conns[i], first)
                    self.ipc_bytes_pickled += n
                    self.ipc_tick_bytes_pickled += n
                    residue = obj[1]
                if residue is not None and "spill" in residue:
                    # Whole-tick ring spill: the residue is the exact
                    # pipe-mode reply.
                    self.ipc_ring_spills += 1
                    return residue["spill"]
                faults = residue.get("faults") if residue is not None else None
                try:
                    return self._decode_tick_reply(i, n_frames, faults)
                except RingIntegrityError as exc:
                    raise WorkerCrash(
                        f"{who} shipped a corrupt ring frame: {exc}",
                        worker=i, ranks=self.owned[i], kind="error",
                    ) from exc
            msg, n = _recv_obj_tail(self._conns[i], data)
            self.ipc_bytes_pickled += n
            if tick:
                self.ipc_tick_bytes_pickled += n
            if msg[0] == "error":
                raise WorkerCrash(
                    f"{who} raised {msg[1]}\n--- worker traceback ---\n{msg[2]}",
                    worker=i, ranks=self.owned[i], kind="error",
                    worker_traceback=msg[2],
                )
            return msg[1]
        finally:
            self.barrier_seconds += time.monotonic() - start  # repro-lint: disable=RPR002 -- host-side telemetry, simulation-invisible

    def _decode_tick_reply(
        self, i: int, n_frames: int, faults: dict[int, tuple] | None
    ) -> tuple[dict[int, RankTickReport], list[Packet] | None]:
        """Rebuild worker ``i``'s barrier reply from its tx-ring frames
        and the shared counters table — the exact
        ``(reports, wave_packets)`` tuple the pickled pipe would carry,
        so the caller's deterministic merge is transport-blind."""
        links = self._links[i]
        packets_a: dict[int, list[Packet]] = {}
        packets_b: dict[int, list[Packet]] = {}
        probes: dict[int, tuple[int, ...]] = {}
        wave: list[Packet] | None = None
        for _ in range(n_frames):
            tag, payload = links.tx.read()
            self.ipc_frame_bytes += len(payload)
            ch, r = tag >> 16, tag & 0xFFFF
            if ch == _CH_PACKETS_A:
                packets_a[r] = decode_packets(payload)
            elif ch == _CH_WAVE:
                wave = decode_packets(payload)
            elif ch == _CH_PACKETS_B:
                packets_b[r] = decode_packets(payload)
            elif ch == _CH_PROBE:
                probes[r] = decode_ints(payload)
            else:  # pragma: no cover - protocol guard
                raise RingIntegrityError(f"unknown frame channel {ch}")
        if faults is None:
            faults = {}
        reports: dict[int, RankTickReport] = {}
        for r in self.owned[i]:
            row = self._table_i[r]
            frow = self._table_f[r]
            cache_faults, spill_faults = faults.get(r, (None, None))
            reports[r] = RankTickReport(
                controls=int(row[_TI_CONTROLS]),
                counters=tuple(  # type: ignore[arg-type]
                    int(v) for v in row[_TI_COUNTERS_LO:_TI_COUNTERS_HI]
                ),
                packets_a=packets_a.get(r, []),
                packets_b=packets_b.get(r, []),
                cache_us=float(frow[_TF_CACHE_US]),
                cache_faults=cache_faults,
                spill_us=float(frow[_TF_SPILL_US]),
                spill_faults=spill_faults,
                bp_stalls=int(row[_TI_BP_STALLS]),
                cache_hits=int(row[_TI_CACHE_HITS]),
                cache_misses=int(row[_TI_CACHE_MISSES]),
                queue_len=int(row[_TI_QUEUE_LEN]),
                quiet=bool(row[_TI_QUIET]),
                buffered=bool(row[_TI_BUFFERED]),
                buffered_visitors=int(row[_TI_BUFFERED_VISITORS]),
                terminated=bool(row[_TI_TERMINATED]),
                probe=probes.get(r),
                ckpt_bytes=int(row[_TI_CKPT_BYTES]),
            )
        return reports, wave

    def ipc_counters(self) -> dict:
        """Host-side barrier IPC telemetry for this run (surfaced as
        :attr:`~repro.core.traversal.TraversalResult.ipc` and by the
        hotpath bench).  ``tick_bytes_pickled`` is the zero-pickle
        contract's observable: on the ring transport a steady-state batch
        tick exchanges no pickled bytes, so it stays 0 unless a tick
        spilled (``ring_spills``) or supervision replayed one."""
        frames = sum(r.frames_read for r in self.rings_tx)
        frames += sum(r.frames_written for r in self.rings_rx)
        return {
            "transport": "ring" if self.use_ring else "pipe",
            "workers": self.num_workers,
            "frames": frames,
            "frame_bytes": self.ipc_frame_bytes,
            "bytes_pickled": self.ipc_bytes_pickled,
            "tick_bytes_pickled": self.ipc_tick_bytes_pickled,
            "ring_spills": self.ipc_ring_spills,
            "barrier_seconds": round(self.barrier_seconds, 6),
        }

    # -------------------------------------------------------------- #
    def kill(self, i: int) -> None:
        """Force-kill worker ``i`` (SIGKILL) and reap it."""
        proc = self._procs[i]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)
        self.alive[i] = False

    def respawn(self, i: int) -> None:
        """Fork a replacement for worker ``i``'s rank set.

        The child is forked from the parent *mid-run* with
        ``seed_ranks=False``: its inherited state is stale and must be
        overwritten by a ``restore`` command before it can serve barriers.
        Raises ``OSError`` if the fork itself fails (the supervisor's
        retry loop treats that as one consumed attempt).
        """
        self.kill(i)
        try:
            self._conns[i].close()
        except OSError:  # pragma: no cover - already closed
            pass
        links = self._links[i]
        if links is not None:
            # The dead producer may have left partial frames behind; wipe
            # both directions so the replacement (forked below, inheriting
            # the same arenas) starts against clean rings with a fresh
            # sequence space.  Safe: no producer is live on either ring.
            links.tx.reset()
            links.rx.reset()
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._engine, self.owned[i], child_conn, False, links),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[i] = proc
        self._conns[i] = parent_conn
        self.alive[i] = True

    def shutdown(self) -> None:
        """Stop and reap every worker (no child-process leak across runs).
        Safe after errors: a wedged worker is terminated, not joined
        forever.  The shared arenas stay mapped — the parent's state views
        still read from them — and are reclaimed with the objects."""
        for i, conn in enumerate(self._conns):
            if not self.alive[i]:
                continue
            try:
                _send_obj(conn, ("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


class WorkerSupervisor:
    """Self-healing barrier coordinator over a :class:`WorkerPool`.

    There is exactly one barrier code path whether supervision is active
    or not: every ``start``/``tick``/``checkpoint``/``replay``/``finalize``
    goes through the supervisor.  Inactive (the default: no restart
    budget, no fault plan), it adds no deadline and re-raises the first
    :class:`~repro.errors.WorkerCrash` — the PR-6 fail-fast contract.
    Active, a failed barrier runs the recovery ladder:

    1. classify (``error`` / ``crash`` / ``hang``, hung workers killed);
    2. up to ``worker_restarts`` times: seeded backoff, fork a
       replacement, restore it from the latest epoch images, replay the
       logged ticks (re-running recorded simulated recoveries), resend
       the failed command;
    3. on budget exhaustion or fork failure, absorb the orphaned ranks
       into the parent's own tick loop (graceful degradation) and serve
       the command in-process.

    All recovery work is host-side and priced into ``supervision_us``;
    the simulated clock, logical counters, packets and digests stay
    bit-identical to an unfailed ``workers=1`` run.
    """

    def __init__(self, engine: "SimulationEngine", pool: WorkerPool) -> None:
        self.engine = engine
        self.pool = pool
        cfg = engine.config
        p = engine.graph.num_partitions
        self.plan = cfg.worker_faults
        self.active: bool = cfg.supervision_active
        self.restart_budget: int = cfg.worker_restarts
        timeout = cfg.worker_barrier_timeout
        if timeout is None and self.active:
            timeout = DEFAULT_BARRIER_TIMEOUT_S
        #: barrier deadline base (None = wait forever, the inactive mode).
        self.timeout: float | None = timeout
        if self.plan is not None:
            for ev in self.plan.events:
                if ev.rank >= p:
                    raise ConfigurationError(
                        f"worker fault event targets rank {ev.rank}, "
                        f"but the graph has {p} ranks"
                    )
        self._rng = resolve_rng(self.plan.seed if self.plan is not None else 0)
        self._forkfails_left = self.plan.fork_failures if self.plan is not None else 0
        self._fired: set[tuple[int, int, str]] = set()
        self._attempts = [0] * pool.num_workers
        self._retired = [False] * pool.num_workers
        #: latest epoch images / simulated byte sizes, keyed by rank.
        self._images: dict[int, dict] = {}
        self._image_bytes: dict[int, int] = {}
        self._epoch_tick = -1
        #: per-rank arrival log since the epoch: {tick: (packets...)}.
        self._log: list[dict[int, tuple]] = [dict() for _ in range(p)]
        #: per-rank recorded *simulated* rank-crash recoveries since the
        #: epoch: (crash_tick, epoch_tick, arrival log) — re-run during
        #: restore so counter residue reproduces (see ``_adopt_images``).
        self._recoveries: list[list] = [[] for _ in range(p)]
        self._completed_tick = 0
        #: stub for parent-absorbed ranks (degraded mode).
        self._stub = _StubNetwork()
        self._absorbed: list[int] = []
        self._absorbed_set: frozenset[int] = frozenset()
        self._parent_snaps: dict[int, dict] = {}
        # supervision stats, folded into TraversalStats at finalize
        self.worker_crashes = 0
        self.worker_hangs = 0
        self.worker_respawns = 0
        self.worker_replayed_ticks = 0
        self.supervision_us = 0.0

    @property
    def degraded_ranks(self) -> int:
        return len(self._absorbed)

    # -------------------------------------------------------------- #
    # Barrier commands
    # -------------------------------------------------------------- #
    def start(self) -> dict[int, list[Packet]]:
        """Collect the workers' ready messages; returns the seed-phase
        packets keyed by emitting rank.  Seed-phase failures fail fast —
        there are no images to restore from yet."""
        seed: dict[int, list[Packet]] = {}
        for i in range(self.pool.num_workers):
            seed.update(self.pool.recv(i, self.timeout))
        return seed

    def prime(self) -> None:
        """Take the tick-0 supervision images when no recovery manager
        will drive checkpoints (``engine.recovery`` handles it otherwise,
        through :class:`ParallelRecoveryManager`)."""
        if self.active and self.engine.recovery is None:
            self.checkpoint(0)

    def note_completed(self, t: int) -> None:
        """Advance the completed-tick watermark.  Must run *before* tick
        ``t``'s checkpoint: a failure during that checkpoint replays
        through ``t`` (its barrier already completed)."""
        self._completed_tick = t

    def maybe_checkpoint(self, t: int) -> None:
        """Supervision-only image cadence (recovery-manager-less runs)."""
        if (
            self.active
            and self.engine.recovery is None
            and t % SUPERVISION_EPOCH_TICKS == 0
        ):
            self.checkpoint(t)

    def tick(
        self, t: int, arrivals: list[list[Packet]]
    ) -> tuple[dict[int, RankTickReport], list[Packet]]:
        """Fan tick ``t`` out (each worker gets only its ranks' arrivals)
        and gather the merged per-rank reports plus the rank-0 wave
        packets, surviving worker failures when supervision is active."""
        pool = self.pool
        if self.active:
            for r, pkts in enumerate(arrivals):
                if pkts:
                    self._log[r][t] = tuple(pkts)
        directives = self._tick_directives(t)
        deadline = self._tick_deadline(arrivals)

        reports: dict[int, RankTickReport] = {}
        wave: list[Packet] = []
        if self._absorbed:
            sub = {r: arrivals[r] for r in self._absorbed if arrivals[r]}
            out, wave_packets = _worker_tick(
                self.engine, self._stub, self._absorbed, self._absorbed_set, sub
            )
            reports.update(out)
            if wave_packets:
                wave = wave_packets

        send_failures: dict[int, WorkerCrash] = {}
        for i in range(pool.num_workers):
            if self._retired[i]:
                continue
            sub = {r: arrivals[r] for r in pool.owned[i] if arrivals[r]}
            try:
                pool.send_tick(i, t, sub, directives.get(i))
            except WorkerCrash as crash:
                send_failures[i] = crash
        for i in range(pool.num_workers):
            if self._retired[i]:
                continue
            crash = send_failures.get(i)
            out = None
            if crash is None:
                try:
                    out = pool.recv(i, deadline, tick=True)
                except WorkerCrash as exc:
                    crash = exc
            if crash is not None:
                out = self._handle_failure(
                    i, crash, self._tick_retry_msg(i, arrivals), deadline,
                    lambda i=i: self._parent_tick(i, arrivals),
                )
            out_reports, wave_packets = out
            reports.update(out_reports)
            if wave_packets:
                wave = wave_packets
        return reports, wave

    def checkpoint(self, tick: int) -> dict[int, int]:
        """All live workers (and the parent, for absorbed ranks) snapshot
        their ranks; with supervision active the full images are shipped
        and become the new restore epoch.  Returns simulated bytes by
        rank."""
        pool = self.pool
        ship = self.active
        merged: dict[int, int] = {}
        images: dict[int, dict] = {}
        if self._absorbed:
            part, imgs = _worker_checkpoint(
                self.engine, self._absorbed, self._parent_snaps, ship=ship
            )
            merged.update(part)
            if imgs:
                images.update(imgs)
        for i in range(pool.num_workers):
            if self._retired[i]:
                continue
            try:
                pool.send(i, ("checkpoint", ship))
                out = pool.recv(i, self.timeout)
            except WorkerCrash as crash:
                out = self._handle_failure(
                    i, crash, ("checkpoint", ship), self.timeout,
                    lambda i=i: self._parent_checkpoint(i, ship),
                )
            part, imgs = out
            merged.update(part)
            if imgs:
                images.update(imgs)
        if ship:
            self._images.update(images)
            self._image_bytes.update(merged)
            self._epoch_tick = tick
            for r in range(len(self._log)):
                self._log[r] = {u: v for u, v in self._log[r].items() if u > tick}
                self._recoveries[r] = [e for e in self._recoveries[r] if e[0] > tick]
        return merged

    def replay(
        self,
        r: int,
        epoch_tick: int,
        crash_tick: int,
        log: dict[int, list[Packet]],
    ) -> tuple[list[list[Packet]], tuple, tuple, int, int]:
        """Simulated rank-crash recovery: route the restore-and-replay of
        rank ``r`` to its owner (or run it in-process for absorbed ranks),
        recording the event so a later *worker* failure's restore can
        re-run it — see :func:`_adopt_images`."""
        if self.active:
            self._recoveries[r].append((crash_tick, epoch_tick, dict(log)))
        if r in self._absorbed_set:
            return _worker_replay(
                self.engine, self._stub, self._parent_snaps,
                r, epoch_tick, crash_tick, log,
            )
        i = self.pool.owner[r]
        msg = ("replay", r, epoch_tick, crash_tick, log)
        deadline = None
        if self.timeout is not None:
            deadline = self.timeout * max(1, crash_tick - epoch_tick)
        try:
            self.pool.send(i, msg)
            return self.pool.recv(i, deadline)
        except WorkerCrash as crash:
            return self._handle_failure(
                i, crash, msg, deadline,
                lambda: _worker_replay(
                    self.engine, self._stub, self._parent_snaps,
                    r, epoch_tick, crash_tick, log,
                ),
            )

    def finalize(self) -> tuple[dict, dict, int | None]:
        """Gather final counters (and object-path states) from all live
        workers plus the parent's absorbed ranks."""
        counters: dict[int, object] = {}
        states: dict[int, object] = {}
        waves: int | None = None
        if self._absorbed:
            part_c, part_s, part_w = _worker_finalize(
                self.engine, self._absorbed, self._absorbed_set
            )
            counters.update(part_c)
            states.update(part_s)
            if part_w is not None:
                waves = part_w
        for i in range(self.pool.num_workers):
            if self._retired[i]:
                continue
            try:
                self.pool.send(i, ("finalize",))
                out = self.pool.recv(i, self.timeout)
            except WorkerCrash as crash:
                out = self._handle_failure(
                    i, crash, ("finalize",), self.timeout,
                    lambda i=i: self._parent_finalize(i),
                )
            part_c, part_s, part_w = out
            counters.update(part_c)
            states.update(part_s)
            if part_w is not None:
                waves = part_w
        return counters, states, waves

    def durable_capture(self) -> list[dict]:
        """Gather every rank's durable epoch section from its owner (or
        the parent, for absorbed ranks) for
        :meth:`~repro.runtime.durability.DurabilityManager.write_epoch`.
        Runs at the same barrier position as the sequential collection —
        after the tick's flush/drain, before the stop checks — so the
        captured state is bit-identical to a ``workers=1`` epoch."""
        pool = self.pool
        sections: dict[int, dict] = {}
        if self._absorbed:
            sections.update(
                _worker_durable(self.engine, self._absorbed, self._parent_snaps)
            )
        for i in range(pool.num_workers):
            if self._retired[i]:
                continue
            try:
                pool.send(i, ("durable",))
                out = pool.recv(i, self.timeout)
            except WorkerCrash as crash:
                out = self._handle_failure(
                    i, crash, ("durable",), self.timeout,
                    lambda i=i: _worker_durable(
                        self.engine, pool.owned[i], self._parent_snaps
                    ),
                )
            sections.update(out)
        return [sections[r] for r in range(self.engine.graph.num_partitions)]

    # -------------------------------------------------------------- #
    # Recovery ladder
    # -------------------------------------------------------------- #
    def _handle_failure(self, i, crash, retry_msg, deadline, parent_fn):
        """Generic per-command recovery driver: respawn-and-replay under
        the retry budget, then graceful degradation.  Returns the failed
        command's reply, produced by a replacement worker or the parent."""
        self._note(crash)
        if not self.active or not self._images:
            raise crash
        pool = self.pool
        while self._attempts[i] < self.restart_budget:
            self._attempts[i] += 1
            self._backoff(self._attempts[i])
            if self._forkfails_left > 0:
                # Injected fork failure: the attempt is consumed, no child.
                self._forkfails_left -= 1
                continue
            try:
                pool.respawn(i)
            except OSError:  # pragma: no cover - real fork failure
                continue
            try:
                pool.recv(i, self.timeout)  # bare ready
                self._restore_worker(i)
                pool.send(i, retry_msg)
                out = pool.recv(i, deadline)
            except WorkerCrash as again:
                self._note(again)
                pool.kill(i)
                continue
            self.worker_respawns += 1
            return out
        self._absorb(i)
        return parent_fn()

    def _restore_worker(self, i: int) -> None:
        """Ship the epoch images + logs + recorded recoveries to the
        freshly respawned worker ``i`` and wait for its replay to the
        completed-tick watermark."""
        pool = self.pool
        owned = pool.owned[i]
        images = {r: self._images[r] for r in owned}
        logs = {r: self._log[r] for r in owned}
        recov = {r: list(self._recoveries[r]) for r in owned}
        pool.send(
            i,
            ("restore", images, self._epoch_tick, self._completed_tick, logs, recov),
        )
        deadline = None
        if self.timeout is not None:
            deadline = self.timeout * max(1, self._completed_tick - self._epoch_tick)
        out = pool.recv(i, deadline)
        self._price_recovery(owned, *out)

    def _absorb(self, i: int) -> None:
        """Graceful degradation: retire worker ``i`` for good and adopt
        its ranks into the parent's own in-process tick loop."""
        pool = self.pool
        pool.kill(i)
        self._retired[i] = True
        owned = pool.owned[i]
        images = {r: self._images[r] for r in owned}
        logs = {r: self._log[r] for r in owned}
        recov = {r: list(self._recoveries[r]) for r in owned}
        out = _adopt_images(
            self.engine, self._stub, images, self._epoch_tick,
            self._completed_tick, logs, recov, snaps=self._parent_snaps,
        )
        self._price_recovery(owned, *out)
        absorbed = self._absorbed_set | frozenset(owned)
        self._absorbed_set = absorbed
        self._absorbed = [r for r in self.engine._rank_order if r in absorbed]

    # -------------------------------------------------------------- #
    # Parent-side fallbacks (degraded mode)
    # -------------------------------------------------------------- #
    def _parent_tick(self, i: int, arrivals: list[list[Packet]]):
        owned = self.pool.owned[i]
        sub = {r: arrivals[r] for r in owned if arrivals[r]}
        return _worker_tick(self.engine, self._stub, owned, frozenset(owned), sub)

    def _parent_checkpoint(self, i: int, ship: bool):
        return _worker_checkpoint(
            self.engine, self.pool.owned[i], self._parent_snaps, ship=ship
        )

    def _parent_finalize(self, i: int):
        owned = self.pool.owned[i]
        return _worker_finalize(self.engine, owned, frozenset(owned))

    # -------------------------------------------------------------- #
    # Bookkeeping
    # -------------------------------------------------------------- #
    def _note(self, crash: WorkerCrash) -> None:
        self.worker_crashes += 1
        if getattr(crash, "kind", None) == "hang":
            self.worker_hangs += 1

    def _backoff(self, attempt: int) -> None:
        """Seeded exponential backoff between respawn attempts (host-side
        pacing; the jitter stream is deterministic per fault seed)."""
        delay = min(_BACKOFF_BASE_S * (2 ** (attempt - 1)), _BACKOFF_CAP_S)
        time.sleep(delay * (0.5 + float(self._rng.random())))

    def _price_recovery(self, owned, c0, c1, controls, replayed) -> None:
        """Charge one restore-and-replay through the machine model into
        ``supervision_us`` (never ``time_us`` — the simulated cluster
        never failed, this is the host-failure what-if price tag)."""
        m = self.engine.machine
        compute_us = (
            (c1[0] - c0[0] + controls) * m.previsit_us
            + (c1[1] - c0[1]) * m.visit_us
            + (c1[2] - c0[2]) * m.edge_scan_us
            + (c1[3] - c0[3]) * m.packet_overhead_us
            + (c1[4] - c0[4]) * m.byte_us
        )
        image_bytes = sum(self._image_bytes.get(r, 0) for r in owned)
        self.supervision_us += (
            m.restart_us + image_bytes * m.restore_byte_us + compute_us
        )
        self.worker_replayed_ticks += replayed

    def _tick_directives(self, t: int) -> dict[int, str]:
        """Resolve this tick's injected fault directives to worker ids
        (one per worker per tick; events on absorbed ranks are moot)."""
        if self.plan is None:
            return {}
        out: dict[int, str] = {}
        for ev in self.plan.events_at(t):
            key = (ev.tick, ev.rank, ev.kind)
            if key in self._fired:
                continue
            self._fired.add(key)
            if ev.rank in self._absorbed_set:
                continue
            i = self.pool.owner[ev.rank]
            if self._retired[i]:
                continue
            out.setdefault(i, ev.kind)
        return out

    def _tick_deadline(self, arrivals: list[list[Packet]]) -> float | None:
        """Wall-clock barrier deadline for one tick, scaled by the tick's
        arrival volume so heavy ticks aren't misclassified as hangs."""
        if self.timeout is None:
            return None
        total = sum(len(a) for a in arrivals)
        return self.timeout * max(1.0, total / _DEADLINE_PACKETS)

    def _tick_retry_msg(self, i: int, arrivals: list[list[Packet]]) -> tuple:
        """The tick command resent after a recovery — directive stripped
        (an injected fault fires once)."""
        sub = {r: arrivals[r] for r in self.pool.owned[i] if arrivals[r]}
        return ("tick", sub, None)


class ParallelRecoveryManager(RecoveryManager):
    """Checkpoint/restart coordinator for the parallel executor.

    Splits the sequential :class:`RecoveryManager` at the process
    boundary: rank-local snapshot images and replay execution live in the
    owning worker; the parent keeps exactly what it owns sequentially —
    transport channel snapshots, delivery logs, byte/cost accounting —
    and interleaves transport notes with the worker's replayed sends in
    per-tick order, so the transport observes the same operation sequence
    as a sequential replay.  Barrier traffic is routed through the
    :class:`WorkerSupervisor`, so simulated rank crashes and real worker
    failures compose (the supervisor records every simulated replay and
    re-runs it when restoring a respawned worker).
    """

    def __init__(self, engine: "SimulationEngine", supervisor: WorkerSupervisor) -> None:
        super().__init__(engine)
        self.supervisor = supervisor

    def _take_snapshots(self, tick: int) -> np.ndarray:
        eng = self.engine
        p = eng.graph.num_partitions
        costs = np.zeros(p, dtype=np.float64)
        bytes_by_rank = self.supervisor.checkpoint(tick)
        for r in range(p):
            self._snaps[r] = {"transport": eng.network.snapshot_rank(r)}
            nbytes = bytes_by_rank[r]
            self._state_bytes[r] = nbytes
            self.checkpoint_bytes += nbytes
            costs[r] = nbytes * eng.machine.checkpoint_byte_us
            self._log[r] = {t: v for t, v in self._log[r].items() if t > tick}
        self.epoch_tick = tick
        return costs

    def restore_and_replay(self, r: int, crash_tick: int) -> tuple[float, int]:
        eng = self.engine
        snap = self._snaps[r]
        if snap is None:
            raise TraversalError(
                f"rank {r} crashed at tick {crash_tick} with no checkpoint "
                f"to restore (recovery manager not initialised?)"
            )
        eng.network.restore_rank(r, snap["transport"])
        log = self._log[r]
        per_tick_packets, c0, c1, controls, replayed = self.supervisor.replay(
            r, self.epoch_tick, crash_tick,
            {t: v for t, v in log.items() if t > self.epoch_tick},
        )
        for i, t in enumerate(range(self.epoch_tick + 1, crash_tick)):
            for pkt in log.get(t, ()):
                eng.network.note_replayed_delivery(r, pkt)
            for pkt in per_tick_packets[i]:
                eng.network.send_packet(pkt)

        m = eng.machine
        compute_us = (
            (c1[0] - c0[0] + controls) * m.previsit_us
            + (c1[1] - c0[1]) * m.visit_us
            + (c1[2] - c0[2]) * m.edge_scan_us
            + (c1[3] - c0[3]) * m.packet_overhead_us
            + (c1[4] - c0[4]) * m.byte_us
        )
        cost_us = (
            m.restart_us + self._state_bytes[r] * m.restore_byte_us + compute_us
        )
        self.recoveries += 1
        return cost_us, replayed
