"""Process-parallel rank execution with deterministic barriers.

``EngineConfig.workers = N`` fans the per-rank work of each tick —
``SimulationEngine._rank_tick``, detector waves, mailbox flushes,
cache/spill epoch drains — out to a persistent pool of forked worker
processes, one fork per :meth:`SimulationEngine.run`.  The contract is the
one the race detector polices: within a tick, rank ``r`` touches only rank
``r``'s queue, mailbox, ghost table, caches and detector, and the only
cross-rank traffic is mailbox packets.  That makes rank execution
embarrassingly parallel *between* the engine's barriers, and the barriers
are where determinism is re-established:

* **Static rank affinity.**  Worker ``w`` owns ranks ``{r : r % W == w}``
  for the whole run, so every per-rank RNG stream, cache, spill pager and
  detector lives in exactly one process and advances exactly as it would
  sequentially.

* **Fork + shared memory.**  The pool is forked *after* engine
  construction, so workers inherit the fully-built engine copy-on-write
  (graph, CSR, topology — nothing is pickled to start a run).  In batch
  mode each rank's SoA state arrays are first rebound onto anonymous
  ``MAP_SHARED`` arenas (:class:`repro.core.batch.SharedArrayBlock`), so
  worker writes land in pages the parent reads — final states come back
  zero-copy.  Object-path states are pickled back once, at finalize.

* **Deterministic merge.**  Workers never talk to the real fabric; their
  mailboxes are rewired to a :class:`_StubNetwork` that records packets in
  emission order, bucketed per phase (mid-tick eager flushes, detector
  wave, end-of-tick flush).  At the barrier the parent replays the buckets
  into the real :class:`~repro.comm.network.Network` /
  :class:`~repro.comm.reliable.ReliableTransport` in exactly the
  sequential global send order — for each rank in ``_rank_order``: phase-A
  packets; then the rank-0 wave packets; then for each rank in
  ``_rank_order``: phase-B packets — so sequence stamps, the fault
  injector's single decision stream, wire counters and order digests are
  bit-identical to ``workers=1``.  Counter deltas and spill/cache charges
  are likewise folded in ascending rank order with the sequential
  per-rank float-addition order preserved.

Checkpoints snapshot rank-local state *inside* the owning worker (the
snapshot never crosses the process boundary; only its simulated byte size
does), and crash replay re-executes the logged ticks in the owning worker
while the parent interleaves transport notes and replayed sends per tick —
see :class:`ParallelRecoveryManager`.

A worker failure of any kind (exception, abrupt death) surfaces as
:class:`WorkerCrash`, which the engine converts into a
:class:`~repro.errors.TraversalError` carrying the partial stats, matching
the ``max_ticks`` behaviour.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.comm.message import Packet
from repro.core.batch import SharedArrayBlock, share_state_arrays
from repro.errors import ConfigurationError, TraversalError
from repro.runtime.recovery import RecoveryManager, estimate_checkpoint_bytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import SimulationEngine


class WorkerCrash(Exception):
    """A parallel worker failed (exception or abrupt death)."""


class _StubNetwork:
    """Packet recorder standing in for the fabric inside a worker.

    Workers must not touch the real network — sequence stamping, fault
    injection and delivery scheduling are parent-side — so their mailboxes
    get this collector instead; :meth:`take` cuts the emission-ordered
    stream into the per-phase buckets the parent's barrier merge replays.
    """

    __slots__ = ("_packets",)

    def __init__(self) -> None:
        self._packets: list[Packet] = []

    def send_packet(self, packet: Packet) -> None:
        self._packets.append(packet)

    def take(self) -> list[Packet]:
        out = self._packets
        self._packets = []
        return out


@dataclass(slots=True)
class RankTickReport:
    """One rank's barrier contribution for one tick (worker -> parent)."""

    #: control envelopes handled (charged like pre-visits).
    controls: int
    #: cumulative (previsits, visits, edges_scanned, pushes, ghost_filtered,
    #: packets_sent, bytes_sent, visitors_sent, visitors_received).
    counters: tuple[int, int, int, int, int, int, int, int, int]
    #: packets emitted during ``_rank_tick`` (mid-tick eager flushes).
    packets_a: list[Packet]
    #: packets emitted by the end-of-tick ``flush()``.
    packets_b: list[Packet]
    #: this tick's cache epoch drain (simulated us) and fault record.
    cache_us: float
    cache_faults: object | None
    #: this tick's spill-pager drain (simulated us) and fault record.
    spill_us: float
    spill_faults: object | None
    #: cumulative backpressure stalls / cache hit/miss totals.
    bp_stalls: int
    cache_hits: int
    cache_misses: int
    #: end-of-tick termination inputs.
    queue_len: int
    quiet: bool
    buffered: bool
    buffered_visitors: int
    terminated: bool
    #: drained order-probe sequence (None unless digests are recorded).
    probe: tuple[int, ...] | None


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
def _worker_main(engine: "SimulationEngine", owned: list[int], conn) -> None:
    """Entry point of one forked worker (owns ``owned`` ranks for life)."""
    try:
        stub = _StubNetwork()
        for r in owned:
            engine.mailboxes[r].network = stub
        owned_set = frozenset(owned)
        snaps: dict[int, dict] = {}

        # Seed the owned ranks (ascending, like the sequential path); any
        # eager-flush packets are shipped for the parent to replay in
        # natural rank order before the first tick.
        seed_packets: dict[int, list[Packet]] = {}
        for r in owned:
            if engine.batch_mode:
                seed = engine.algorithm.initial_batch(engine.graph, r)
                if seed is not None:
                    engine.ranks[r].push_batch(seed)
            else:
                for visitor in engine.algorithm.initial_visitors(engine.graph, r):
                    engine.ranks[r].push(visitor)
            seed_packets[r] = stub.take()
        conn.send(("ready", seed_packets))

        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "tick":
                conn.send(("ok", _worker_tick(engine, stub, owned, owned_set, msg[1])))
            elif cmd == "checkpoint":
                conn.send(("ok", _worker_checkpoint(engine, owned, snaps)))
            elif cmd == "replay":
                conn.send(("ok", _worker_replay(engine, stub, snaps, *msg[1:])))
            elif cmd == "finalize":
                conn.send(("ok", _worker_finalize(engine, owned, owned_set)))
            elif cmd == "stop":
                break
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown worker command {cmd!r}")
    except BaseException as exc:  # noqa: BLE001 - everything must cross the pipe
        try:
            conn.send(("error", repr(exc), traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


def _worker_tick(
    engine: "SimulationEngine",
    stub: _StubNetwork,
    owned: list[int],
    owned_set: frozenset,
    arrivals: dict[int, list[Packet]],
) -> tuple[dict[int, RankTickReport], list[Packet] | None]:
    """One tick's owned-rank work: phase A, wave (rank-0 owner), phase B,
    then the per-rank epoch drains and termination inputs."""
    cfg = engine.config
    order = [r for r in engine._rank_order if r in owned_set]
    controls: dict[int, int] = {}
    packets_a: dict[int, list[Packet]] = {}
    for r in order:
        controls[r] = engine._rank_tick(r, arrivals.get(r, []))
        packets_a[r] = stub.take()

    # The wave only reads and mutates rank 0's detector/mailbox, so running
    # it before *other workers'* phase A completes is unobservable; it is
    # sequenced exactly between this worker's phase A and phase B, as the
    # sequential loop sequences it for rank 0.
    wave_packets: list[Packet] | None = None
    detectors = engine.detectors
    if 0 in owned_set and detectors is not None and not detectors[0].terminated:
        detectors[0].maybe_start_wave()
        wave_packets = stub.take()

    reports: dict[int, RankTickReport] = {}
    for r in order:
        engine.mailboxes[r].flush()
        packets_b = stub.take()
        rank = engine.ranks[r]
        mailbox = engine.mailboxes[r]
        c = rank.counters
        cache = engine.caches[r]
        cache_us = 0.0
        cache_faults = None
        if cache is not None:
            cache_us = cache.drain_epoch_us(concurrency=cfg.io_concurrency)
            cache_faults = cache.last_epoch_faults
        spill = engine.spills[r]
        spill_us = 0.0
        spill_faults = None
        if spill is not None:
            if cfg.queue_spill is not None:
                rank.sync_spill(spill, cfg.queue_spill)
            spill_us = spill.drain_epoch_us(concurrency=cfg.io_concurrency)
            spill_faults = spill.cache.last_epoch_faults
        probe = None
        if engine._record_digests:
            probe = tuple(rank.order_probe)
            rank.order_probe.clear()
        reports[r] = RankTickReport(
            controls=controls[r],
            counters=(
                c.previsits, c.visits, c.edges_scanned, c.pushes,
                c.ghost_filtered, mailbox.packets_sent, mailbox.bytes_sent,
                mailbox.visitors_sent, mailbox.visitors_received,
            ),
            packets_a=packets_a[r],
            packets_b=packets_b,
            cache_us=cache_us,
            cache_faults=cache_faults,
            spill_us=spill_us,
            spill_faults=spill_faults,
            bp_stalls=mailbox.bp_stalls,
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
            queue_len=rank.queue_length(),
            quiet=rank.locally_quiet(),
            buffered=mailbox.has_buffered(),
            buffered_visitors=mailbox.buffered_visitor_count(),
            terminated=(
                engine.detectors[r].terminated
                if engine.detectors is not None
                else True
            ),
            probe=probe,
        )
    return reports, wave_packets


def _worker_checkpoint(
    engine: "SimulationEngine", owned: list[int], snaps: dict[int, dict]
) -> dict[int, int]:
    """Snapshot the owned ranks' restartable state locally; ship only the
    simulated checkpoint byte sizes (the images never cross the pipe)."""
    out: dict[int, int] = {}
    for r in owned:
        snap = {
            "queue": engine.ranks[r].snapshot_state(),
            "mailbox": engine.mailboxes[r].snapshot_state(),
        }
        if engine.detectors is not None:
            snap["detector"] = engine.detectors[r].snapshot_state()
        snaps[r] = snap
        out[r] = estimate_checkpoint_bytes(engine, r)
    return out


def _worker_replay(
    engine: "SimulationEngine",
    stub: _StubNetwork,
    snaps: dict[int, dict],
    r: int,
    epoch_tick: int,
    crash_tick: int,
    log: dict[int, list[Packet]],
) -> tuple[list[list[Packet]], tuple, tuple, int, int]:
    """Crash recovery for owned rank ``r``: reinstall the epoch snapshot
    and re-execute the logged ticks, returning the per-tick emitted packet
    streams plus the counter deltas the parent prices replay compute from.
    Mirrors :meth:`RecoveryManager.restore_and_replay` rank-locally."""
    snap = snaps.get(r)
    if snap is None:
        raise TraversalError(
            f"rank {r} crashed at tick {crash_tick} with no worker-side "
            f"checkpoint to restore"
        )
    engine.ranks[r].restore_state(snap["queue"])
    engine.mailboxes[r].restore_state(snap["mailbox"])
    if engine.detectors is not None:
        engine.detectors[r].restore_state(snap["detector"])

    def counter_tuple() -> tuple[int, int, int, int, int]:
        c = engine.ranks[r].counters
        mb = engine.mailboxes[r]
        return (c.previsits, c.visits, c.edges_scanned, mb.packets_sent, mb.bytes_sent)

    c0 = counter_tuple()
    controls = 0
    replayed = 0
    per_tick_packets: list[list[Packet]] = []
    detectors = engine.detectors
    for t in range(epoch_tick + 1, crash_tick):
        packets = log.get(t, [])
        controls += engine._rank_tick(r, list(packets))
        if r == 0 and detectors is not None and not detectors[0].terminated:
            detectors[0].maybe_start_wave()
        engine.mailboxes[r].flush()
        per_tick_packets.append(stub.take())
        replayed += 1
    return per_tick_packets, c0, counter_tuple(), controls, replayed


def _worker_finalize(
    engine: "SimulationEngine", owned: list[int], owned_set: frozenset
) -> tuple[dict, dict, int | None]:
    """End-of-run accounting for the owned ranks: sync mailbox counters,
    fold cache totals, ship the counters (and object-path states)."""
    counters: dict[int, object] = {}
    states: dict[int, object] = {}
    for r in owned:
        rank = engine.ranks[r]
        rank.sync_mailbox_counters()
        cache = engine.caches[r]
        if cache is not None:
            rank.counters.cache_hits = cache.hits
            rank.counters.cache_misses = cache.misses
            rank.counters.cache_evictions = cache.evictions
        counters[r] = rank.counters
        if not engine.batch_mode:
            states[r] = rank.states
    waves = None
    if 0 in owned_set and engine.detectors is not None:
        waves = engine.detectors[0].waves_participated
    return counters, states, waves


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #
class WorkerPool:
    """Persistent forked worker pool for one :meth:`SimulationEngine.run`.

    Forked in the constructor — after the engine is fully built and (in
    batch mode) after the state arrays are rebound onto shared arenas — so
    every worker's engine copy is bit-identical to the parent's by
    construction.
    """

    def __init__(self, engine: "SimulationEngine") -> None:
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise ConfigurationError(
                "workers > 1 requires the 'fork' multiprocessing start "
                "method (POSIX); run with workers=1 on this platform"
            )
        ctx = mp.get_context("fork")
        p = engine.graph.num_partitions
        w = min(engine.config.workers, p)
        self.owned: list[list[int]] = [
            [r for r in range(p) if r % w == i] for i in range(w)
        ]
        self.owner: list[int] = [r % w for r in range(p)]
        self.blocks: list[SharedArrayBlock] = []
        if engine.batch_mode:
            for rank in engine.ranks:
                block = share_state_arrays(rank.states)
                if block is not None:
                    self.blocks.append(block)
        self._procs = []
        self._conns = []
        for i in range(w):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(engine, self.owned[i], child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    @property
    def num_workers(self) -> int:
        return len(self._procs)

    # -------------------------------------------------------------- #
    def _recv(self, i: int):
        """Receive one reply from worker ``i``; raise :class:`WorkerCrash`
        on a reported exception or an abrupt death (never hang)."""
        conn = self._conns[i]
        proc = self._procs[i]
        who = f"worker {i} (ranks {self.owned[i]})"
        while True:
            if conn.poll(0.05):
                try:
                    msg = conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerCrash(f"{who} closed its pipe mid-reply") from exc
                if msg[0] == "error":
                    raise WorkerCrash(f"{who} raised {msg[1]}\n{msg[2]}")
                return msg[1]
            if not proc.is_alive() and not conn.poll(0):
                raise WorkerCrash(f"{who} died (exitcode {proc.exitcode})")

    def _broadcast(self, message: tuple) -> list:
        for conn in self._conns:
            conn.send(message)
        return [self._recv(i) for i in range(len(self._conns))]

    # -------------------------------------------------------------- #
    def start(self) -> dict[int, list[Packet]]:
        """Collect the workers' ready messages; returns the seed-phase
        packets keyed by emitting rank."""
        seed: dict[int, list[Packet]] = {}
        for i in range(len(self._conns)):
            seed.update(self._recv(i))
        return seed

    def tick(
        self, arrivals: list[list[Packet]]
    ) -> tuple[dict[int, RankTickReport], list[Packet]]:
        """Fan one tick out (each worker gets only its ranks' arrivals) and
        gather the merged per-rank reports plus the rank-0 wave packets."""
        for i, conn in enumerate(self._conns):
            sub = {r: arrivals[r] for r in self.owned[i] if arrivals[r]}
            conn.send(("tick", sub))
        reports: dict[int, RankTickReport] = {}
        wave: list[Packet] = []
        for i in range(len(self._conns)):
            out, wave_packets = self._recv(i)
            reports.update(out)
            if wave_packets:
                wave = wave_packets
        return reports, wave

    def checkpoint(self) -> dict[int, int]:
        """All workers snapshot their ranks; returns simulated bytes by rank."""
        merged: dict[int, int] = {}
        for part in self._broadcast(("checkpoint",)):
            merged.update(part)
        return merged

    def replay(
        self,
        r: int,
        epoch_tick: int,
        crash_tick: int,
        log: dict[int, list[Packet]],
    ) -> tuple[list[list[Packet]], tuple, tuple, int, int]:
        """Ask rank ``r``'s owner to restore and replay; see
        :func:`_worker_replay`."""
        conn = self._conns[self.owner[r]]
        conn.send(("replay", r, epoch_tick, crash_tick, log))
        return self._recv(self.owner[r])

    def finalize(self) -> tuple[dict, dict, int | None]:
        """Gather final counters (and object-path states) from all workers."""
        counters: dict[int, object] = {}
        states: dict[int, object] = {}
        waves: int | None = None
        for part_counters, part_states, part_waves in self._broadcast(("finalize",)):
            counters.update(part_counters)
            states.update(part_states)
            if part_waves is not None:
                waves = part_waves
        return counters, states, waves

    def shutdown(self) -> None:
        """Stop and reap every worker (no child-process leak across runs).
        Safe after errors: a wedged worker is terminated, not joined
        forever.  The shared arenas stay mapped — the parent's state views
        still read from them — and are reclaimed with the objects."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()


class ParallelRecoveryManager(RecoveryManager):
    """Checkpoint/restart coordinator for the parallel executor.

    Splits the sequential :class:`RecoveryManager` at the process
    boundary: rank-local snapshot images and replay execution live in the
    owning worker; the parent keeps exactly what it owns sequentially —
    transport channel snapshots, delivery logs, byte/cost accounting —
    and interleaves transport notes with the worker's replayed sends in
    per-tick order, so the transport observes the same operation sequence
    as a sequential replay.
    """

    def __init__(self, engine: "SimulationEngine", pool: WorkerPool) -> None:
        super().__init__(engine)
        self.pool = pool

    def _take_snapshots(self, tick: int) -> np.ndarray:
        eng = self.engine
        p = eng.graph.num_partitions
        costs = np.zeros(p, dtype=np.float64)
        bytes_by_rank = self.pool.checkpoint()
        for r in range(p):
            self._snaps[r] = {"transport": eng.network.snapshot_rank(r)}
            nbytes = bytes_by_rank[r]
            self._state_bytes[r] = nbytes
            self.checkpoint_bytes += nbytes
            costs[r] = nbytes * eng.machine.checkpoint_byte_us
            self._log[r] = {t: v for t, v in self._log[r].items() if t > tick}
        self.epoch_tick = tick
        return costs

    def restore_and_replay(self, r: int, crash_tick: int) -> tuple[float, int]:
        eng = self.engine
        snap = self._snaps[r]
        if snap is None:
            raise TraversalError(
                f"rank {r} crashed at tick {crash_tick} with no checkpoint "
                f"to restore (recovery manager not initialised?)"
            )
        eng.network.restore_rank(r, snap["transport"])
        log = self._log[r]
        per_tick_packets, c0, c1, controls, replayed = self.pool.replay(
            r, self.epoch_tick, crash_tick,
            {t: v for t, v in log.items() if t > self.epoch_tick},
        )
        for i, t in enumerate(range(self.epoch_tick + 1, crash_tick)):
            for pkt in log.get(t, ()):
                eng.network.note_replayed_delivery(r, pkt)
            for pkt in per_tick_packets[i]:
                eng.network.send_packet(pkt)

        m = eng.machine
        compute_us = (
            (c1[0] - c0[0] + controls) * m.previsit_us
            + (c1[1] - c0[1]) * m.visit_us
            + (c1[2] - c0[2]) * m.edge_scan_us
            + (c1[3] - c0[3]) * m.packet_overhead_us
            + (c1[4] - c0[4]) * m.byte_us
        )
        cost_us = (
            m.restart_us + self._state_bytes[r] * m.restore_byte_us + compute_us
        )
        self.recoveries += 1
        return cost_us, replayed
