"""Simulated distributed-machine runtime.

The engine executes the real visitor-queue / mailbox / termination code on
``p`` simulated ranks and advances a simulated clock using a
:class:`repro.runtime.costmodel.MachineModel`.  Tick duration is the
*maximum* per-rank cost in that tick — the critical path — which is what
surfaces partition imbalance and communication hotspots in simulated TEPS
the same way they surface on real hardware.
"""

from repro.runtime.costmodel import (
    EngineConfig,
    MachineModel,
    bgp_intrepid,
    hyperion_dit,
    laptop,
    leviathan,
    trestles,
)
from repro.runtime.engine import SimulationEngine
from repro.runtime.pressure import StragglerClock, StragglerPlan
from repro.runtime.trace import RankCounters, TraversalStats

__all__ = [
    "MachineModel",
    "EngineConfig",
    "bgp_intrepid",
    "hyperion_dit",
    "trestles",
    "leviathan",
    "laptop",
    "SimulationEngine",
    "RankCounters",
    "TraversalStats",
    "StragglerPlan",
    "StragglerClock",
]
