"""Traversal-level checkpoint/restart for crash recovery.

The :class:`RecoveryManager` implements the coordinated-epoch scheme the
reliable transport (:mod:`repro.comm.reliable`) leans on when the fault
plan crashes ranks:

* **Epoch checkpoints.**  Every ``EngineConfig.checkpoint_interval`` ticks
  (after the tick's flushes, so the snapshot is a clean between-ticks cut)
  each rank snapshots its restartable state: vertex states, local visitor
  heap, ghost table, mailbox buffers and counters, quiescence-detector
  protocol state, and its transport channel state (per-channel sequence
  counters, receive watermarks, queued-but-untransmitted packets).  The
  snapshot cost is charged through ``MachineModel.checkpoint_byte_us`` on
  the checkpoint tick.

* **Delivery logs.**  Between checkpoints, every packet released to a rank
  is appended to that rank's delivery log (shared references — packets are
  immutable once released).  Logs are trimmed at each checkpoint.

* **Restore + deterministic replay.**  When a crashed rank restarts, its
  epoch snapshot is reinstalled in place and the logical ticks between the
  epoch and the crash are *re-executed* against the logged deliveries —
  the same inputs, in the same canonical order, from the same state, so
  the rank deterministically re-derives exactly its pre-crash state,
  including every counter the quiescence detector counts.  Sends emitted
  during replay get their original sequence numbers; the transport skips
  those below the receiver's watermark (already delivered — the restart
  handshake) and re-queues the rest, which receiver-side dedup makes safe.

Recovery time — fixed restart cost, restore bytes, and the replayed
compute priced by the ordinary ``MachineModel`` event rates — is returned
to the transport and charged into the crash tick's per-rank costs.

Page caches are deliberately left warm across a crash: restoring cache
state would change *other* ranks' simulated timing, and the distortion is
cost-only (replay I/O lands in the crash tick as recovery time), never
state-visible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.comm.message import Packet
from repro.errors import TraversalError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import SimulationEngine


def estimate_checkpoint_bytes(engine: "SimulationEngine", r: int) -> int:
    """Simulated size of rank ``r``'s checkpoint image: 16 bytes per vertex
    state (value + parent), the queued visitors at their wire size, 8 bytes
    per ghost value, plus a fixed header.  Shared with the parallel
    executor, whose workers compute it rank-locally."""
    rank = engine.ranks[r]
    ghosts = len(rank.ghost_table) if rank.ghost_table is not None else 0
    return (
        64
        + rank.num_local_states * 16
        + rank.queue_length() * engine.algorithm.visitor_bytes
        + ghosts * 8
    )


class RecoveryManager:
    """Checkpoint/restart coordinator for one engine run."""

    def __init__(self, engine: "SimulationEngine") -> None:
        self.engine = engine
        p = engine.graph.num_partitions
        self.epoch_tick = -1  # no checkpoint yet
        self._snaps: list[dict | None] = [None] * p
        self._state_bytes = [0] * p
        self._log: list[dict[int, list[Packet]]] = [{} for _ in range(p)]
        # cumulative statistics (folded into TraversalStats by the engine)
        self.checkpoints_taken = 0
        self.checkpoint_bytes = 0
        self.recoveries = 0

    # ------------------------------------------------------------------ #
    def initial_checkpoint(self) -> None:
        """Epoch 0: taken right after seeding, before the first tick.

        Safe as a recovery point because seeding is rank-local — every
        initial visitor is pushed on its own rank, so the epoch-0 cut plus
        the transport's queued-packet snapshot captures the complete
        pre-tick state.  Charged nowhere (it models job setup, not
        steady-state checkpoint traffic).
        """
        self._take_snapshots(0)

    def checkpoint(self, tick: int) -> np.ndarray:
        """Snapshot every rank at the end of ``tick``; returns the per-rank
        simulated cost (bytes x ``checkpoint_byte_us``) to charge into the
        tick."""
        costs = self._take_snapshots(tick)
        self.checkpoints_taken += 1
        return costs

    def _take_snapshots(self, tick: int) -> np.ndarray:
        eng = self.engine
        p = eng.graph.num_partitions
        costs = np.zeros(p, dtype=np.float64)
        for r in range(p):
            snap = {
                "queue": eng.ranks[r].snapshot_state(),
                "mailbox": eng.mailboxes[r].snapshot_state(),
                "transport": eng.network.snapshot_rank(r),
            }
            if eng.detectors is not None:
                snap["detector"] = eng.detectors[r].snapshot_state()
            self._snaps[r] = snap
            nbytes = self._estimate_bytes(r)
            self._state_bytes[r] = nbytes
            self.checkpoint_bytes += nbytes
            costs[r] = nbytes * eng.machine.checkpoint_byte_us
            # log entries at or before the new epoch can never be replayed
            self._log[r] = {t: v for t, v in self._log[r].items() if t > tick}
        self.epoch_tick = tick
        return costs

    def _estimate_bytes(self, r: int) -> int:
        """See :func:`estimate_checkpoint_bytes`."""
        return estimate_checkpoint_bytes(self.engine, r)

    # ------------------------------------------------------------------ #
    def log_arrivals(self, tick: int, rank: int, packets: list[Packet]) -> None:
        """Record the packets released to ``rank`` on ``tick`` (replay
        input for a later restart)."""
        if packets:
            self._log[rank][tick] = packets

    # ------------------------------------------------------------------ #
    def restore_and_replay(self, r: int, crash_tick: int) -> tuple[float, int]:
        """Bring restarted rank ``r`` back to its pre-crash state.

        Reinstalls the epoch snapshot, then re-executes ticks
        ``epoch_tick+1 .. crash_tick-1`` against the delivery log.  Replay
        is deterministic, so the rank's vertex states, heap, mailbox and
        detector counters land bit-identical to the moment before the
        crash.  Returns ``(simulated_cost_us, ticks_replayed)``.
        """
        eng = self.engine
        snap = self._snaps[r]
        if snap is None:
            raise TraversalError(
                f"rank {r} crashed at tick {crash_tick} with no checkpoint "
                f"to restore (recovery manager not initialised?)"
            )
        eng.ranks[r].restore_state(snap["queue"])
        eng.mailboxes[r].restore_state(snap["mailbox"])
        if eng.detectors is not None:
            eng.detectors[r].restore_state(snap["detector"])
        eng.network.restore_rank(r, snap["transport"])

        c0 = self._counter_tuple(r)
        controls = 0
        replayed = 0
        log = self._log[r]
        detectors = eng.detectors
        for t in range(self.epoch_tick + 1, crash_tick):
            packets = log.get(t, ())
            for pkt in packets:
                eng.network.note_replayed_delivery(r, pkt)
            controls += eng._rank_tick(r, list(packets))
            if r == 0 and detectors is not None and not detectors[0].terminated:
                detectors[0].maybe_start_wave()
            eng.mailboxes[r].flush()
            replayed += 1
        c1 = self._counter_tuple(r)

        m = eng.machine
        compute_us = (
            (c1[0] - c0[0] + controls) * m.previsit_us
            + (c1[1] - c0[1]) * m.visit_us
            + (c1[2] - c0[2]) * m.edge_scan_us
            + (c1[3] - c0[3]) * m.packet_overhead_us
            + (c1[4] - c0[4]) * m.byte_us
        )
        cost_us = (
            m.restart_us + self._state_bytes[r] * m.restore_byte_us + compute_us
        )
        self.recoveries += 1
        return cost_us, replayed

    def _counter_tuple(self, r: int) -> tuple[int, int, int, int, int]:
        c = self.engine.ranks[r].counters
        mb = self.engine.mailboxes[r]
        return (c.previsits, c.visits, c.edges_scanned, mb.packets_sent, mb.bytes_sent)

    # ------------------------------------------------------------------ #
    def storage_recover(self, r: int, num_pages: int) -> float:
        """Escalation path for permanent device read failures.

        A page that still fails after the page cache's bounded retries is
        lost to the local device; the paper's substrate keeps the graph
        image replicated across the checkpoint store, so the rank re-fetches
        the page over the network instead of dying.  Returns the simulated
        cost: one round trip plus the page bytes at checkpoint-restore
        bandwidth.  Pure cost — the cache already installed the page, so no
        simulated state changes.
        """
        m = self.engine.machine
        page = self.engine.machine.page_size
        return num_pages * (
            2 * m.hop_latency_us + page * (m.restore_byte_us + m.byte_us)
        )
