"""repro — reproduction of *Scaling Techniques for Massive Scale-Free
Graphs in Distributed (External) Memory* (Pearce, Gokhale, Amato —
IPDPS 2013).

The library implements the paper's full system in Python over a
deterministic simulated distributed machine:

* **edge list partitioning** with master/replica forwarding chains for
  split (hub) adjacency lists,
* **ghost vertices** filtering redundant visitors to high in-degree hubs,
* a **routed, aggregating mailbox** over 2D / 3D synthetic topologies,
* the **distributed asynchronous visitor queue** (Algorithm 1) with
  counting quiescence detection,
* three asynchronous algorithms — **BFS**, **k-core**, **triangle
  counting** — plus SSSP and connected components,
* a simulated **NVRAM + user-space page cache** external-memory substrate.

Quickstart::

    from repro import EdgeList, DistributedGraph, bfs, rmat_edges

    src, dst = rmat_edges(scale=12, num_edges=16 << 12, seed=1)
    edges = EdgeList.from_arrays(src, dst, 1 << 12).simple_undirected()
    graph = DistributedGraph.build(edges, num_partitions=16, num_ghosts=256)
    result = bfs(graph, source=0)
    print(result.data.num_reached, result.stats.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.algorithms import (
    bfs,
    connected_components,
    kcore,
    pagerank,
    sssp,
    triangle_count,
)
from repro.algorithms.bfs import BFSAlgorithm, BFSResult
from repro.algorithms.bsp_bfs import bsp_bfs
from repro.algorithms.connected_components import ConnectedComponentsAlgorithm
from repro.algorithms.kcore import KCoreAlgorithm, KCoreResult
from repro.algorithms.sssp import SSSPAlgorithm
from repro.algorithms.triangles import TriangleCountAlgorithm, TriangleCountResult
from repro.algorithms.wedge_sampling import sample_triangle_estimate
from repro.analysis.communication import communication_profile
from repro.analysis.validate import validate_bfs
from repro.bench.graph500 import run_graph500
from repro.core import AsyncAlgorithm, TraversalResult, Visitor, run_traversal
from repro.generators import (
    Graph500Config,
    permute_labels,
    preferential_attachment_edges,
    rmat_edges,
    small_world_edges,
)
from repro.graph import (
    CSR,
    DistributedGraph,
    EdgeList,
    EdgeListPartitioning,
    OneDPartitioning,
    TwoDBlockPartitioning,
)
from repro.graph.dist_sort import sample_sort_edges
from repro.graph.io import (
    load_binary_edges,
    load_text_edges,
    save_binary_edges,
    save_text_edges,
)
from repro.runtime import (
    EngineConfig,
    MachineModel,
    bgp_intrepid,
    hyperion_dit,
    laptop,
    leviathan,
    trestles,
)
from repro.types import UNREACHED

__version__ = "1.0.0"

__all__ = [
    # graph
    "EdgeList",
    "CSR",
    "DistributedGraph",
    "EdgeListPartitioning",
    "OneDPartitioning",
    "TwoDBlockPartitioning",
    # generators
    "Graph500Config",
    "rmat_edges",
    "preferential_attachment_edges",
    "small_world_edges",
    "permute_labels",
    # core
    "Visitor",
    "AsyncAlgorithm",
    "run_traversal",
    "TraversalResult",
    # algorithms
    "bfs",
    "BFSAlgorithm",
    "BFSResult",
    "kcore",
    "KCoreAlgorithm",
    "KCoreResult",
    "triangle_count",
    "TriangleCountAlgorithm",
    "TriangleCountResult",
    "sssp",
    "SSSPAlgorithm",
    "pagerank",
    "connected_components",
    "ConnectedComponentsAlgorithm",
    # runtime
    "MachineModel",
    "EngineConfig",
    "laptop",
    "bgp_intrepid",
    "hyperion_dit",
    "trestles",
    "leviathan",
    # extensions & tooling
    "bsp_bfs",
    "sample_triangle_estimate",
    "sample_sort_edges",
    "run_graph500",
    "validate_bfs",
    "communication_profile",
    "save_binary_edges",
    "load_binary_edges",
    "save_text_edges",
    "load_text_edges",
    # misc
    "UNREACHED",
]
