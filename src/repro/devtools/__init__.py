"""Static-analysis devtools: the ``repro lint`` determinism linter.

This package is a self-contained AST-based analyzer that enforces the
repository's determinism and invariant rules as named, suppressible
checks (see :mod:`repro.devtools.rules` for the rule catalogue and
``docs/INTERNALS.md`` section 10 for the rationale):

File-scoped rules (each file analyzed in isolation):

``RPR001``  no unseeded randomness outside devtools/tests
``RPR002``  no wall-clock reads in simulation code paths
``RPR003``  no unordered set/dict iteration feeding send order
``RPR004``  snapshot/restore must cover all ``__init__`` state
``RPR005``  device I/O in runtime/comm must be cost-accounted

Project-scoped rules (run over a whole-tree :class:`ProjectIndex` that
resolves classes, bases and calls across modules):

``RPR006``  pickle safety: no local-scope classes crossing worker pipes
``RPR007``  snapshot/restore symmetry across inheritance and modules
``RPR008``  every mutated stats counter registered in TraversalStats
``RPR009``  no fork-unsafe resources (handles/locks) crossing workers

Run it as ``repro lint [paths...]`` or ``python -m repro.devtools``.
Violations are suppressible per line with::

    # repro-lint: disable=RPR003 -- reason why this is safe

and per-attribute snapshot exemptions with::

    self.attr = ...  # repro-lint: volatile -- reason it need not persist

The linter itself must stay importable without the rest of the library
(it is run by CI before the test suite), so it only uses the stdlib.
"""

from repro.devtools.baseline import Baseline, BaselineResult
from repro.devtools.project import ProjectIndex, ProjectRule
from repro.devtools.report import (
    Violation,
    render_json,
    render_sarif,
    render_text,
)
from repro.devtools.rules import RULE_REGISTRY, all_rules
from repro.devtools.runner import LintResult, run_lint_tree
from repro.devtools.walker import lint_file, lint_paths

# Importing a rule module registers its rules as a side effect of the
# ``@register`` class decorators.  Doing it *here* — not lazily inside
# ``all_rules()`` — guarantees the registry is complete the moment
# ``repro.devtools`` (or any submodule, which triggers the package
# ``__init__`` first) is imported, so ``from repro.devtools import
# rules`` followed by ``RULE_REGISTRY`` lookups can never observe a
# half-populated catalogue.
from repro.devtools import dataflow as _dataflow  # noqa: E402,F401
from repro.devtools import rules_parallel as _rules_parallel  # noqa: E402,F401

__all__ = [
    "RULE_REGISTRY",
    "Baseline",
    "BaselineResult",
    "LintResult",
    "ProjectIndex",
    "ProjectRule",
    "Violation",
    "all_rules",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint_tree",
]
