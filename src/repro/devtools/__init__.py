"""Static-analysis devtools: the ``repro lint`` determinism linter.

This package is a self-contained AST-based analyzer that enforces the
repository's determinism and invariant rules as named, suppressible
checks (see :mod:`repro.devtools.rules` for the rule catalogue and
``docs/INTERNALS.md`` section 10 for the rationale):

``RPR001``  no unseeded randomness outside devtools/tests
``RPR002``  no wall-clock reads in simulation code paths
``RPR003``  no unordered set/dict iteration feeding send order
``RPR004``  snapshot/restore must cover all ``__init__`` state
``RPR005``  device I/O in runtime/comm must be cost-accounted

Run it as ``repro lint [paths...]`` or ``python -m repro.devtools``.
Violations are suppressible per line with::

    # repro-lint: disable=RPR003 -- reason why this is safe

and per-attribute snapshot exemptions with::

    self.attr = ...  # repro-lint: volatile -- reason it need not persist

The linter itself must stay importable without the rest of the library
(it is run by CI before the test suite), so it only uses the stdlib.
"""

from repro.devtools.report import Violation, render_json, render_text
from repro.devtools.rules import RULE_REGISTRY, all_rules
from repro.devtools.walker import lint_file, lint_paths

__all__ = [
    "RULE_REGISTRY",
    "Violation",
    "all_rules",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
]
