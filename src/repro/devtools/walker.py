"""AST walking infrastructure shared by every rule.

A :class:`FileContext` bundles everything a rule needs to inspect one
file: the parsed tree, the raw lines, the suppression table and an
import-alias map that resolves names like ``np.random.rand`` back to
their canonical dotted module path (``numpy.random.rand``) so rules
match modules, not local spellings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.devtools.report import Violation
from repro.devtools.suppressions import SuppressionTable, scan_pragmas

#: Path components skipped by default when walking directories.  The
#: linter's own package and the test tree are exempt from the rules
#: (fixtures *contain* violations on purpose), matching the policy in
#: docs/INTERNALS.md section 10.
DEFAULT_EXCLUDES: frozenset[str] = frozenset(
    {"devtools", "tests", "benchmarks", "examples", "__pycache__",
     ".git", "build", "dist"}
)


@dataclass
class ImportMap:
    """Local-name -> canonical dotted path, built from import statements."""

    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportMap":
        m = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    m.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    m.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        # Conventional numpy alias even when numpy is imported lazily.
        m.aliases.setdefault("np", "numpy")
        return m

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path for a Name/Attribute chain, or None."""
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = self.aliases.get(cur.id, cur.id)
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything the rules need to know about one source file."""

    path: str  # as reported (relative when possible)
    tree: ast.Module
    lines: list[str]
    suppressions: SuppressionTable
    imports: ImportMap

    @classmethod
    def parse(cls, file_path: Path, display_path: str) -> "FileContext":
        source = file_path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=display_path)
        lines = source.splitlines()
        return cls(
            path=display_path,
            tree=tree,
            lines=lines,
            suppressions=scan_pragmas(display_path, lines),
            imports=ImportMap.from_tree(tree),
        )


def iter_scopes(
    tree: ast.Module,
) -> Iterator[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda]:
    """Yield the module and every function-like scope in the tree."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def iter_python_files(
    paths: Sequence[str | Path],
    *,
    excludes: frozenset[str] = DEFAULT_EXCLUDES,
) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint, sorted."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for f in candidates:
            if any(part in excludes for part in f.parts):
                continue
            rf = f.resolve()
            if rf not in seen:
                seen.add(rf)
                yield f


def display_path(path: Path) -> str:
    """Report paths relative to the CWD when possible (stable in CI)."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def lint_file(ctx: FileContext, rules: Sequence) -> list[Violation]:
    """Run ``rules`` over one parsed file, applying suppressions."""
    out: list[Violation] = list(ctx.suppressions.errors)
    for rule in rules:
        for v in rule.check(ctx):
            if not ctx.suppressions.is_suppressed(v.line, v.rule):
                out.append(v)
    return out


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence | None = None,
    excludes: frozenset[str] = DEFAULT_EXCLUDES,
) -> tuple[list[Violation], int]:
    """Lint files/directories; returns ``(violations, files_checked)``.

    Compatibility wrapper over :func:`repro.devtools.runner.run_lint_tree`
    (uncached, no baseline) — file rules *and* project rules both run.
    """
    from repro.devtools.runner import run_lint_tree

    result = run_lint_tree(paths, rules=rules, excludes=excludes)
    return result.violations, result.checked_files
