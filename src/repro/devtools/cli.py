"""The ``repro lint`` command line (also ``python -m repro.devtools``).

Exit codes: 0 clean, 1 violations found, 2 usage error — so CI can gate
directly on the process status.  The incremental cache is on by default
(``.repro-lint-cache/``, content-hash keyed, safe to delete at any
time); ``--no-cache`` disables it.  ``--baseline lint-baseline.json``
subtracts the committed backlog so CI gates on *new* findings only.
"""

from __future__ import annotations

import argparse
import sys

from repro.devtools.report import render_json, render_sarif, render_text
from repro.devtools.rules import RULE_REGISTRY, all_rules
from repro.devtools.runner import run_lint_tree
from repro.devtools.walker import DEFAULT_EXCLUDES

#: Pragma spellings shown by ``--list-rules`` (the suppression grammar).
_PRAGMA_HELP = (
    "suppress per line:   # repro-lint: disable=RPR006[,RPR007...] -- reason",
    "exempt an attribute: # repro-lint: volatile -- reason  "
    "(RPR004/RPR007 __init__ state)",
)


def add_lint_args(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with the top-level ``repro`` CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (json is the CI gate input; sarif feeds "
             "GitHub code-scanning annotations)")
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout")
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="subtract the committed baseline (known violations) from "
             "the report; stale entries are warned about")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline FILE from this run's findings, then "
             "report against it (exit 0)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache")
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=".repro-lint-cache",
        help="incremental cache directory (default: .repro-lint-cache)")
    parser.add_argument(
        "--include-excluded", action="store_true",
        help="also lint the default-excluded trees "
             f"({', '.join(sorted(DEFAULT_EXCLUDES - {'.git', '__pycache__'}))})")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (scope, scoped dirs, pragma "
             "spelling) and exit")


def _list_rules() -> int:
    all_rules()  # force registration of every rule module
    for code in sorted(RULE_REGISTRY):
        cls = RULE_REGISTRY[code]
        scope = getattr(cls, "scope", "file")
        dirs = getattr(cls, "scoped_dirs", ())
        where = ", ".join(f"{d}/" for d in dirs) if dirs else "tree-wide"
        print(f"{code}  [{scope:7s}]  {where:28s}  {cls.summary}")
    for line in _PRAGMA_HELP:
        print(line)
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        return _list_rules()
    select = None
    if args.select:
        select = frozenset(c.strip() for c in args.select.split(",") if c.strip())
    try:
        rules = all_rules(select)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    excludes = (
        frozenset({".git", "__pycache__"}) if args.include_excluded
        else DEFAULT_EXCLUDES
    )
    baseline = args.baseline
    if args.update_baseline and baseline is None:
        print("repro lint: --update-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2
    try:
        result = run_lint_tree(
            args.paths,
            rules=rules,
            excludes=excludes,
            cache_dir=None if args.no_cache else args.cache_dir,
            baseline_path=baseline,
            update_baseline=args.update_baseline,
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if result.checked_files == 0:
        print(f"repro lint: no python files found under {args.paths}",
              file=sys.stderr)
        return 2

    violations = result.violations
    if args.format == "json":
        report = render_json(violations, checked_files=result.checked_files,
                             result=result)
    elif args.format == "sarif":
        report = render_sarif(violations, checked_files=result.checked_files)
    elif violations:
        report = render_text(violations)
    else:
        report = f"repro lint: {result.checked_files} files clean"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    else:
        print(report)

    # Run telemetry goes to stderr so the report itself stays
    # byte-identical between cold and warm runs.
    if result.cache_enabled:
        print(f"repro lint: cache: {result.parsed_files} files parsed, "
              f"{result.cache_hits} file hits, project "
              f"{'hit' if result.project_cache_hit else 'miss'}",
              file=sys.stderr)
    if result.baselined:
        print(f"repro lint: baseline suppressed {result.baselined} known "
              f"violation{'s' if result.baselined != 1 else ''}",
              file=sys.stderr)
    if result.stale_baseline:
        n = len(result.stale_baseline)
        print(f"repro lint: warning: {n} stale baseline "
              f"entr{'ies' if n != 1 else 'y'} (violations no longer "
              f"present; regenerate with --update-baseline):",
              file=sys.stderr)
        for e in result.stale_baseline[:10]:
            print(f"  {e.get('path')}:{e.get('line')}: {e.get('rule')}",
                  file=sys.stderr)
    return 1 if violations else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & invariant linter "
                    "(file rules RPR001-RPR005, project rules "
                    "RPR006-RPR009; see docs/INTERNALS.md section 10)")
    add_lint_args(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
