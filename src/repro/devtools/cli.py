"""The ``repro lint`` command line (also ``python -m repro.devtools``).

Exit codes: 0 clean, 1 violations found, 2 usage error — so CI can gate
directly on the process status.
"""

from __future__ import annotations

import argparse
import sys

from repro.devtools.report import render_json, render_text
from repro.devtools.rules import RULE_REGISTRY, all_rules
from repro.devtools.walker import DEFAULT_EXCLUDES, lint_paths


def add_lint_args(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with the top-level ``repro`` CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (json is the CI gate input)")
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "--include-excluded", action="store_true",
        help="also lint the default-excluded trees "
             f"({', '.join(sorted(DEFAULT_EXCLUDES - {'.git', '__pycache__'}))})")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        all_rules()  # force registration of every rule module
        for code in sorted(RULE_REGISTRY):
            print(f"{code}  {RULE_REGISTRY[code].summary}")
        return 0
    select = None
    if args.select:
        select = frozenset(c.strip() for c in args.select.split(",") if c.strip())
    try:
        rules = all_rules(select)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    excludes = (
        frozenset({".git", "__pycache__"}) if args.include_excluded
        else DEFAULT_EXCLUDES
    )
    violations, checked = lint_paths(args.paths, rules=rules, excludes=excludes)
    if checked == 0:
        print(f"repro lint: no python files found under {args.paths}",
              file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(violations, checked_files=checked))
    elif violations:
        print(render_text(violations))
    else:
        print(f"repro lint: {checked} files clean")
    return 1 if violations else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & invariant linter "
                    "(rules RPR001-RPR005; see docs/INTERNALS.md section 10)")
    add_lint_args(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
