"""Committed-baseline support: land new rules without a big-bang cleanup.

A baseline file (conventionally ``lint-baseline.json`` at the repo root)
lists known, accepted violations.  ``repro lint --baseline FILE``
subtracts them from the report, so CI can gate on *new* findings while
the backlog is burned down deliberately.  Two properties keep the
mechanism honest:

* Entries match on ``(path, rule, line)`` — moving or fixing the code
  un-matches the entry instead of hiding a fresh violation elsewhere.
* Entries that no longer match anything are reported as **stale** (the
  violation disappeared; the baseline should shrink).  Staleness is a
  warning, never a gate failure, so deleting code cannot break CI — but
  it is surfaced on every run until the file is regenerated with
  ``--update-baseline``.

Policy note (enforced by test, not by this module): no violation under
``src/repro/runtime/`` or ``src/repro/comm/`` may be baselined — the
parallel/durability invariants those trees carry are exactly the ones
the RPR006-RPR009 pack exists to keep tight.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.devtools.report import Violation

_BASELINE_VERSION = 1


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to a violation list."""

    kept: list[Violation]
    suppressed: int
    stale: list[dict] = field(default_factory=list)


class Baseline:
    """An accepted-violations ledger; see the module docstring."""

    def __init__(self, entries: list[dict]) -> None:
        self.entries = entries

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        raw = json.loads(Path(path).read_text())
        entries = raw.get("entries", []) if isinstance(raw, dict) else []
        return cls([e for e in entries if isinstance(e, dict)])

    @staticmethod
    def write(path: str | Path, violations: list[Violation]) -> None:
        payload = {
            "version": _BASELINE_VERSION,
            "entries": [
                {k: v for k, v in asdict(viol).items() if k != "col"}
                for viol in sorted(violations)
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @staticmethod
    def _key(path: str, rule: str, line: int) -> tuple[str, str, int]:
        return (path, rule, int(line))

    def apply(self, violations: list[Violation]) -> BaselineResult:
        index: dict[tuple[str, str, int], dict] = {}
        for e in self.entries:
            try:
                index[self._key(e["path"], e["rule"], e["line"])] = e
            except (KeyError, TypeError, ValueError):
                continue  # malformed entry: never matches, reported stale
        matched: set[tuple[str, str, int]] = set()
        kept: list[Violation] = []
        for v in violations:
            key = self._key(v.path, v.rule, v.line)
            if key in index:
                matched.add(key)
            else:
                kept.append(v)
        stale = [e for e in self.entries
                 if self._key(e.get("path", ""), e.get("rule", ""),
                              e.get("line", -1)) not in matched]
        return BaselineResult(
            kept=kept,
            suppressed=len(violations) - len(kept),
            stale=stale,
        )
