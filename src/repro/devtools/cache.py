"""The incremental lint cache (``.repro-lint-cache/``).

Two granularities, both keyed by content, never by mtime:

* **Per-file entries** — ``blake2b(file bytes)`` -> the file-scoped
  violations (including pragma/syntax RPR000s).  A hit means the file
  need not be parsed for the per-file rules.
* **One project entry** — ``blake2b(sorted (path, file-hash) pairs)``
  -> the project-rule violations.  A hit means the tree is byte-for-byte
  the one the project rules last ran on, so the whole index build is
  skipped; on an unchanged tree the second run parses *zero* files.

The cache is invalidated wholesale when the analyzer itself changes: the
signature folds in the source bytes of every ``repro.devtools`` module
plus the active rule codes, so editing a rule (or selecting a different
subset) can never serve stale findings.  Entries for vanished files are
dropped on save.  The whole file is advisory — a corrupt or unreadable
cache degrades to a full re-lint, never to an error.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.devtools.report import Violation

_CACHE_VERSION = 1
_CACHE_FILE = "cache.json"


def file_digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def tree_digest(entries: list[tuple[str, str]]) -> str:
    """Digest of the whole tree: sorted (display-path, file-digest)."""
    h = hashlib.blake2b(digest_size=16)
    for path, digest in sorted(entries):
        h.update(path.encode())
        h.update(b"\0")
        h.update(digest.encode())
        h.update(b"\0")
    return h.hexdigest()


def analyzer_signature(codes: tuple[str, ...]) -> str:
    """Content hash of the analyzer itself plus the active rule set."""
    h = hashlib.blake2b(digest_size=16)
    pkg = Path(__file__).parent
    for src in sorted(pkg.glob("*.py")):
        h.update(src.name.encode())
        h.update(src.read_bytes())
    h.update(",".join(codes).encode())
    return h.hexdigest()


class LintCache:
    """Load/store for one cache directory; see the module docstring."""

    def __init__(self, cache_dir: str | Path, codes: tuple[str, ...]) -> None:
        self.dir = Path(cache_dir)
        self.signature = analyzer_signature(codes)
        self._files: dict[str, dict] = {}
        self._project: dict | None = None
        self._load()

    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        try:
            raw = json.loads((self.dir / _CACHE_FILE).read_text())
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("version") != _CACHE_VERSION:
            return
        if raw.get("signature") != self.signature:
            return  # the analyzer changed; everything is stale
        files = raw.get("files")
        if isinstance(files, dict):
            self._files = files
        project = raw.get("project")
        if isinstance(project, dict):
            self._project = project

    def save(self, live_paths: set[str]) -> None:
        """Persist, dropping entries for files that no longer exist."""
        self._files = {p: e for p, e in self._files.items() if p in live_paths}
        payload = {
            "version": _CACHE_VERSION,
            "signature": self.signature,
            "files": self._files,
            "project": self._project,
        }
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            (self.dir / _CACHE_FILE).write_text(json.dumps(payload))
        except OSError:
            pass  # advisory: a read-only checkout just runs uncached

    # ------------------------------------------------------------------ #
    @staticmethod
    def _thaw(raw: list[dict]) -> list[Violation]:
        return [Violation(**v) for v in raw]

    def file_violations(self, path: str, digest: str) -> list[Violation] | None:
        entry = self._files.get(path)
        if entry is None or entry.get("digest") != digest:
            return None
        return self._thaw(entry.get("violations", []))

    def store_file(self, path: str, digest: str,
                   violations: list[Violation]) -> None:
        self._files[path] = {
            "digest": digest,
            "violations": [asdict(v) for v in sorted(violations)],
        }

    def project_violations(self, key: str) -> list[Violation] | None:
        if self._project is None or self._project.get("key") != key:
            return None
        return self._thaw(self._project.get("violations", []))

    def store_project(self, key: str, violations: list[Violation]) -> None:
        self._project = {
            "key": key,
            "violations": [asdict(v) for v in sorted(violations)],
        }
