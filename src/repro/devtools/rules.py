"""The rule catalogue and registry.

Each rule is a class with a ``code`` (``RPR###``), a one-line
``summary`` and a ``check(ctx) -> list[Violation]`` method over one
:class:`~repro.devtools.walker.FileContext`.  Register new rules with
the :func:`register` decorator; ``repro lint --list-rules`` prints the
catalogue straight from this registry.

RPR003 (unordered-iteration dataflow) lives in
:mod:`repro.devtools.dataflow` and registers itself here on import.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.devtools.report import Violation
from repro.devtools.walker import FileContext

RULE_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    code = getattr(cls, "code", None)
    if not code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    RULE_REGISTRY[code] = cls
    return cls


def all_rules(select: frozenset[str] | None = None) -> list:
    """Instantiate the registered rules (optionally a selected subset)."""
    # The package __init__ imports every rule module, so any import of
    # repro.devtools.* has already filled the registry.  The re-imports
    # here are a belt-and-suspenders guard for direct module execution
    # paths that bypass the package (they are no-ops otherwise).
    from repro.devtools import dataflow, rules_parallel  # noqa: F401

    codes = sorted(RULE_REGISTRY)
    if select is not None:
        unknown = select - set(codes)
        if unknown:
            raise ValueError(f"unknown rule codes: {sorted(unknown)}")
        codes = [c for c in codes if c in select]
    return [RULE_REGISTRY[c]() for c in codes]


class Rule:
    """Base class: shared helpers for location bookkeeping."""

    code: str = ""
    summary: str = ""
    #: ``"file"`` rules run once per parsed file; ``"project"`` rules
    #: (see :class:`repro.devtools.project.ProjectRule`) run once per
    #: tree against the built index.
    scope: str = "file"
    #: Path components the rule confines itself to (empty = tree-wide).
    scoped_dirs: tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> list[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            ctx.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            self.code,
            message,
        )


# --------------------------------------------------------------------- #
# RPR001: unseeded randomness
# --------------------------------------------------------------------- #

#: numpy.random constructors that are deterministic *when given a seed*.
_NP_SEEDED_CTORS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
     "PCG64DXSM", "Philox", "MT19937", "SFC64"}
)


@register
class UnseededRandomness(Rule):
    """Module-level ``random.*``, legacy ``np.random.*`` and unseeded
    generator constructors all draw from process-global or OS entropy,
    which breaks the repo's split-invariant RNG-stream guarantee."""

    code = "RPR001"
    summary = "no unseeded or process-global randomness"

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.resolve(node.func)
            if dotted is None:
                continue
            msg = self._classify(dotted, node)
            if msg is not None:
                out.append(self.violation(ctx, node, msg))
        return out

    @staticmethod
    def _classify(dotted: str, node: ast.Call) -> str | None:
        hint = ("; seed it explicitly or use repro.utils.rng.resolve_rng / "
                "spawn_rngs")
        if dotted.startswith("random."):
            tail = dotted.split(".", 1)[1]
            if tail == "Random":
                if node.args or node.keywords:
                    return None
                return f"unseeded random.Random(){hint}"
            if tail == "SystemRandom":
                return f"random.SystemRandom draws OS entropy{hint}"
            return (f"call into the process-global stdlib RNG "
                    f"({dotted}){hint}")
        if dotted.startswith("numpy.random."):
            tail = dotted.split("numpy.random.", 1)[1]
            if tail in _NP_SEEDED_CTORS:
                if node.args or node.keywords:
                    return None
                return f"unseeded numpy.random.{tail}(){hint}"
            return (f"legacy numpy.random API (numpy.random.{tail}) uses "
                    f"the process-global stream{hint}")
        return None


# --------------------------------------------------------------------- #
# RPR002: wall-clock reads in simulation code
# --------------------------------------------------------------------- #

_WALLCLOCK_CALLS = frozenset(
    {"time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
     "time.monotonic", "time.monotonic_ns", "time.process_time",
     "time.process_time_ns", "time.clock_gettime",
     "datetime.datetime.now", "datetime.datetime.today",
     "datetime.datetime.utcnow", "datetime.date.today"}
)

#: Path components whose files may read the host clock (host-side
#: measurement tooling, not simulation).
_WALLCLOCK_ALLOWED_PARTS = frozenset({"bench", "benchmarks"})


@register
class WallClockRead(Rule):
    """Simulated time comes from the cost model; host-clock reads in
    simulation code make runs non-reproducible across machines."""

    code = "RPR002"
    summary = "no wall-clock reads in simulation code paths"

    def check(self, ctx: FileContext) -> list[Violation]:
        parts = set(Path(ctx.path).parts)
        if parts & _WALLCLOCK_ALLOWED_PARTS:
            return []
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.resolve(node.func)
            if dotted in _WALLCLOCK_CALLS:
                out.append(self.violation(
                    ctx, node,
                    f"wall-clock read ({dotted}) in simulation code; "
                    f"simulated time must come from the MachineModel cost "
                    f"accounting"))
        return out


# --------------------------------------------------------------------- #
# RPR004: snapshot/restore completeness
# --------------------------------------------------------------------- #

_SNAPSHOT_PAIRS = (("snapshot_state", "restore_state"), ("snapshot", "restore"))


def _self_attr(node: ast.AST) -> str | None:
    """Name of a direct ``self.X`` attribute node, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _assigned_self_attrs(fn: ast.FunctionDef) -> Iterator[tuple[str, int]]:
    """Yield ``(attr, lineno)`` for every ``self.X = ...`` style binding
    (plain, annotated, augmented, and ``self.X[...] = ...`` mutations)."""
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Tuple):
                targets.extend(t.elts)
                continue
            name = _self_attr(t)
            if name is None and isinstance(t, ast.Subscript):
                name = _self_attr(t.value)
            if name is not None:
                yield name, t.lineno


@register
class SnapshotCompleteness(Rule):
    """A class with snapshot/restore methods must cover every attribute
    that ``__init__`` creates *and* other methods mutate; anything else
    silently survives a crash-restore with stale state."""

    code = "RPR004"
    summary = "snapshot/restore must cover all mutable __init__ state"

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                out.extend(self._check_class(ctx, node))
        return out

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> list[Violation]:
        methods = {
            n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)
        }
        pair = next(
            (p for p in _SNAPSHOT_PAIRS if p[0] in methods and p[1] in methods),
            None,
        )
        init = methods.get("__init__")
        if pair is None or init is None:
            return []
        snap_name, restore_name = pair

        init_attrs: dict[str, int] = {}
        for name, lineno in _assigned_self_attrs(init):
            init_attrs.setdefault(name, lineno)

        covered: set[str] = set()
        for m in (methods[snap_name], methods[restore_name]):
            for sub in ast.walk(m):
                name = _self_attr(sub)
                if name is not None:
                    covered.add(name)

        mutated_in: dict[str, str] = {}
        for mname, m in methods.items():
            if mname == "__init__":
                continue
            for name, _ in _assigned_self_attrs(m):
                mutated_in.setdefault(name, mname)

        out: list[Violation] = []
        for name, lineno in sorted(init_attrs.items(), key=lambda kv: kv[1]):
            if name in covered:
                continue
            if name not in mutated_in:
                # Immutable wiring (never rebound outside __init__) cannot
                # drift, so a checkpoint need not carry it.
                continue
            if ctx.suppressions.is_volatile(lineno):
                continue
            out.append(Violation(
                ctx.path, lineno, 1, self.code,
                f"class {cls.name}: 'self.{name}' is assigned in __init__ "
                f"and mutated in {mutated_in[name]}() but appears in "
                f"neither {snap_name}() nor {restore_name}(); snapshot it "
                f"or mark the assignment '# repro-lint: volatile -- reason'"))
        return out


# --------------------------------------------------------------------- #
# RPR005: cost-accounted device I/O in runtime/ and comm/
# --------------------------------------------------------------------- #

_IO_METHODS = frozenset(
    {"spill", "unspill", "access_range", "access_pages", "write_epoch"}
)
_COST_NAMES = frozenset({"costs", "cost", "charge", "charged", "machine"})
_RPR005_SCOPED_DIRS = frozenset({"runtime", "comm"})


def _touches_cost_model(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        ident: str | None = None
        if isinstance(node, ast.Attribute):
            ident = node.attr
        elif isinstance(node, ast.Name):
            ident = node.id
        if ident is None:
            continue
        if ident.endswith("_us") or ident in _COST_NAMES:
            return True
    return False


@register
class FreeDeviceIO(Rule):
    """Every SpillPager/PageCache touch from the engine or comm layers
    must happen in a scope that also talks to the cost model, so I/O can
    never silently become free."""

    code = "RPR005"
    summary = "device I/O in runtime//comm/ must be cost-accounted"
    scoped_dirs = ("runtime", "comm")

    def check(self, ctx: FileContext) -> list[Violation]:
        if not set(Path(ctx.path).parts) & _RPR005_SCOPED_DIRS:
            return []
        out: list[Violation] = []
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _touches_cost_model(node):
                continue
            for sub in ast.walk(node):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _IO_METHODS):
                    key = (sub.lineno, sub.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(self.violation(
                        ctx, sub,
                        f"device I/O '{sub.func.attr}(...)' in "
                        f"{node.name}() with no cost-model touch in scope "
                        f"(free I/O); charge it into the tick costs or "
                        f"suppress with a reason"))
        return out
