"""The parallel/durability rule pack: RPR006-RPR009.

Project-scoped rules over the :class:`~repro.devtools.project.ProjectIndex`
— each one encodes an invariant the worker pool (INTERNALS §11), the
supervisor (§12) or the durability layer (§13) multiplied across
modules, where a per-file AST walk cannot see the other half of the
contract:

``RPR006`` *pickle-safety*
    Visitor envelopes cross worker pipes and checkpoint sections cross a
    pickle stream, so every class whose instances ride either channel
    must be importable by name on the far side.  A visitor class defined
    in function scope is the exact bug class the parallel executor hit
    with the per-``k`` k-core visitors; the sanctioned escape hatch is
    the k-core pattern itself — register the class under a module-level
    name (``globals()[cls.__name__] = cls``) inside the factory.
    Lambdas/generator expressions stored on pickle-reachable classes are
    flagged for the same reason.

``RPR007`` *snapshot/restore symmetry*
    ``restore_state`` must reinstall exactly the attribute set
    ``snapshot_state`` saves — an attr saved but never restored (or
    restored from thin air) silently resurrects stale state after the
    *next* crash.  Wiring attrs (never rebound outside ``__init__``) and
    constant resets in restore are exempt.  For classes that *inherit*
    the pair from a base in another module, every mutable ``__init__``
    attr must be covered — the cross-module generalization of RPR004.

``RPR008`` *stats-field registration*
    Every ``stats.X`` counter mutated under ``runtime/`` or ``comm/``
    must be a declared ``TraversalStats`` field, and the supervision /
    durability field families must be registered in their exclusion
    tuples (``SUPERVISION_STATS_FIELDS`` / ``DURABILITY_STATS_FIELDS``)
    — those tuples *are* the bit-identity contract's fine print, so an
    unregistered counter either breaks the equivalence gates or silently
    escapes them.

``RPR009`` *fork-safety*
    Worker processes are forked mid-run; OS resources created before the
    fork (open file handles, thread locks, sockets, multiprocessing
    primitives) and persisted on simulation state are shared or
    duplicated across the fork boundary without going through the
    arena/pipe protocol.  Persisting one on a *checkpointed* class is
    doubly wrong: it would also be pickled into a durable section.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.devtools.project import (
    PIPE_SINKS,
    ClassInfo,
    ProjectIndex,
    ProjectRule,
)
from repro.devtools.report import Violation
from repro.devtools.rules import _assigned_self_attrs, _self_attr, register

#: Classes whose subclasses travel through worker pipes as envelopes.
VISITOR_BASES = frozenset({"repro.core.visitor.Visitor"})

#: Method pairs that make a class part of a checkpoint section.
SNAPSHOT_PAIRS = (("snapshot_state", "restore_state"), ("snapshot", "restore"))


def _snapshot_pair(
    index: ProjectIndex, info: ClassInfo
) -> tuple[tuple[ClassInfo, ast.FunctionDef],
           tuple[ClassInfo, ast.FunctionDef], bool] | None:
    """Resolve a snapshot/restore pair on ``info`` (possibly inherited).

    Returns ``((snap_cls, snap_fn), (restore_cls, restore_fn),
    inherited)`` or None; ``inherited`` is True when either method comes
    from a base class rather than the class body itself.
    """
    for snap_name, restore_name in SNAPSHOT_PAIRS:
        snap = index.mro_method(info, snap_name)
        restore = index.mro_method(info, restore_name)
        if snap is not None and restore is not None:
            inherited = snap[0].key != info.key or restore[0].key != info.key
            return snap, restore, inherited
    return None


def _method_self_attrs(fn: ast.FunctionDef) -> set[str]:
    """Every ``self.X`` attribute referenced anywhere in a method."""
    out: set[str] = set()
    for node in ast.walk(fn):
        name = _self_attr(node)
        if name is not None:
            out.add(name)
    return out


def _uses_dynamic_attrs(fn: ast.FunctionDef) -> bool:
    """True when the method goes through setattr/getattr/vars/__dict__ —
    the attr set is then statically unknowable and the rule stands down."""
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in {"setattr", "getattr", "vars"}):
            return True
        if isinstance(node, ast.Attribute) and node.attr == "__dict__":
            return True
    return False


def _constant_only_writes(fn: ast.FunctionDef, attr: str) -> bool:
    """True when every appearance of ``self.attr`` in ``fn`` is an
    assignment of a constant / empty literal (the reset-on-restore
    idiom: the attr is deliberately cleared, not round-tripped)."""
    appearances = 0
    resets = 0
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            names = {_self_attr(t) for t in node.targets}
            if attr in names:
                appearances += sum(1 for t in node.targets
                                   if _self_attr(t) == attr)
                value = node.value
                if isinstance(value, ast.Constant) or (
                        isinstance(value, (ast.List, ast.Dict, ast.Set,
                                           ast.Tuple))
                        and not getattr(value, "elts",
                                        getattr(value, "keys", []))):
                    resets += sum(1 for t in node.targets
                                  if _self_attr(t) == attr)
                continue
        name = _self_attr(node)
        if name == attr and not _is_assign_target(node, fn):
            appearances += 1
    return appearances > 0 and appearances == resets


def _is_assign_target(node: ast.AST, fn: ast.FunctionDef) -> bool:
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.Assign) and node in stmt.targets:
            return True
    return False


def _rebound_outside_init(chain: list[ClassInfo]) -> set[str]:
    """Attrs assigned in any non-``__init__`` method across the chain."""
    out: set[str] = set()
    for info in chain:
        for mname, m in info.methods.items():
            if mname == "__init__":
                continue
            for name, _ in _assigned_self_attrs(m):
                out.add(name)
    return out


# --------------------------------------------------------------------- #
# RPR006: pickle-safety across worker pipes / checkpoint sections
# --------------------------------------------------------------------- #

_UNPICKLABLE_VALUE_KINDS = (ast.Lambda, ast.GeneratorExp)


@register
class PickleSafety(ProjectRule):
    """See module docstring — RPR006."""

    code = "RPR006"
    summary = "worker-pipe / checkpoint payload classes must pickle"

    def check_project(self, index: ProjectIndex) -> list[Violation]:
        out: list[Violation] = []
        for info in index.iter_classes():
            if info.enclosing_function is not None:
                out.extend(self._check_local_class(index, info))
            out.extend(self._check_unpicklable_attrs(index, info))
        return out

    # -- local visitor classes ---------------------------------------- #
    def _check_local_class(
        self, index: ProjectIndex, info: ClassInfo
    ) -> Iterator[Violation]:
        fn = info.enclosing_function
        assert fn is not None
        pipe_bound = index.is_subclass_of(info, VISITOR_BASES)
        if not pipe_bound:
            # Not a visitor: still flagged when the enclosing factory
            # hands instances to a pipe/pickle sink.
            called = index.calls.get(
                self._function_key(index, info, fn), frozenset())
            pipe_bound = bool(called & PIPE_SINKS)
        if not pipe_bound:
            return
        if self._registers_module_level(fn):
            return
        yield Violation(
            info.path, info.node.lineno, info.node.col_offset + 1, self.code,
            f"class {info.name} is defined in local scope inside "
            f"{fn.name}() but its instances cross a worker pipe / pickle "
            f"stream; define it at module level or register it like the "
            f"k-core factory (globals()[cls.__name__] = cls)")

    @staticmethod
    def _function_key(index: ProjectIndex, info: ClassInfo,
                      fn: ast.FunctionDef) -> str:
        for key, node in index.functions.items():
            if node is fn:
                return key
        return f"{info.module}.{fn.name}"

    @staticmethod
    def _registers_module_level(fn: ast.FunctionDef) -> bool:
        """The k-core escape hatch: ``globals()[...] = cls`` in the
        factory re-homes the class under an importable module-level
        name, which is exactly what pickle-by-reference needs."""
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            for t in node.targets:
                if (isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Call)
                        and isinstance(t.value.func, ast.Name)
                        and t.value.func.id == "globals"):
                    return True
        return False

    # -- unpicklable attrs on pickle-reachable classes ------------------ #
    def _check_unpicklable_attrs(
        self, index: ProjectIndex, info: ClassInfo
    ) -> Iterator[Violation]:
        reachable = (index.is_subclass_of(info, VISITOR_BASES)
                     or _snapshot_pair(index, info) is not None)
        if not reachable:
            return
        for m in info.methods.values():
            for node in ast.walk(m):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, _UNPICKLABLE_VALUE_KINDS):
                    continue
                for t in node.targets:
                    attr = _self_attr(t)
                    if attr is None:
                        continue
                    kind = ("lambda"
                            if isinstance(node.value, ast.Lambda)
                            else "generator expression")
                    yield Violation(
                        info.path, node.lineno, node.col_offset + 1,
                        self.code,
                        f"class {info.name}: 'self.{attr}' holds a {kind}, "
                        f"which cannot pickle across worker pipes or into "
                        f"a checkpoint section; use a module-level "
                        f"function or precomputed state")


# --------------------------------------------------------------------- #
# RPR007: snapshot/restore symmetry (cross-module)
# --------------------------------------------------------------------- #


@register
class SnapshotSymmetry(ProjectRule):
    """See module docstring — RPR007."""

    code = "RPR007"
    summary = "snapshot_state/restore_state must cover the same attrs"

    def check_project(self, index: ProjectIndex) -> list[Violation]:
        out: list[Violation] = []
        for info in index.iter_classes():
            pair = _snapshot_pair(index, info)
            if pair is None:
                out.extend(self._check_orphan_half(index, info))
                continue
            (snap_cls, snap_fn), (restore_cls, restore_fn), inherited = pair
            if inherited:
                out.extend(self._check_inherited_completeness(
                    index, info, snap_fn, restore_fn))
            if snap_cls.key != info.key and restore_cls.key != info.key:
                # Symmetry of the pair itself is checked once, on the
                # class that defines it, not on every subclass.
                continue
            out.extend(self._check_symmetry(
                index, info, snap_fn, restore_fn))
        return out

    def _check_orphan_half(
        self, index: ProjectIndex, info: ClassInfo
    ) -> Iterator[Violation]:
        """A class shipping one half of a pair cannot round-trip a
        checkpoint at all — the durability layer would snapshot it and
        then have no way to reinstall it (or vice versa)."""
        for snap_name, restore_name in SNAPSHOT_PAIRS:
            snap = index.mro_method(info, snap_name)
            restore = index.mro_method(info, restore_name)
            if snap is not None and restore is None:
                fn = snap[1]
                yield Violation(
                    info.path, fn.lineno, fn.col_offset + 1, self.code,
                    f"class {info.name} defines {snap_name}() but no "
                    f"{restore_name}(); a checkpoint of this class can "
                    f"never be reinstalled")
            elif restore is not None and snap is None:
                fn = restore[1]
                yield Violation(
                    info.path, fn.lineno, fn.col_offset + 1, self.code,
                    f"class {info.name} defines {restore_name}() but no "
                    f"{snap_name}(); there is nothing for it to restore "
                    f"from")

    def _check_symmetry(
        self, index: ProjectIndex, info: ClassInfo,
        snap_fn: ast.FunctionDef, restore_fn: ast.FunctionDef,
    ) -> Iterator[Violation]:
        if _uses_dynamic_attrs(snap_fn) or _uses_dynamic_attrs(restore_fn):
            return
        snap_attrs = _method_self_attrs(snap_fn)
        restore_attrs = _method_self_attrs(restore_fn)
        chain = index.mro_chain(info)
        rebound = _rebound_outside_init(chain)
        init_attrs: set[str] = set()
        for c in chain:
            init = c.methods.get("__init__")
            if init is not None:
                init_attrs.update(n for n, _ in _assigned_self_attrs(init))
        wiring = init_attrs - rebound
        for attr in sorted(snap_attrs - restore_attrs):
            if attr in wiring:
                continue
            yield Violation(
                info.path, snap_fn.lineno, snap_fn.col_offset + 1, self.code,
                f"class {info.name}: 'self.{attr}' is saved by "
                f"{snap_fn.name}() but never reinstalled by "
                f"{restore_fn.name}(); a restore would silently keep the "
                f"pre-crash value")
        for attr in sorted(restore_attrs - snap_attrs):
            if attr in wiring:
                continue
            if _constant_only_writes(restore_fn, attr):
                continue  # deliberate reset-on-restore, not a round-trip
            yield Violation(
                info.path, restore_fn.lineno, restore_fn.col_offset + 1,
                self.code,
                f"class {info.name}: {restore_fn.name}() touches "
                f"'self.{attr}' which {snap_fn.name}() never saves; the "
                f"restore depends on state the checkpoint does not carry")

    def _check_inherited_completeness(
        self, index: ProjectIndex, info: ClassInfo,
        snap_fn: ast.FunctionDef, restore_fn: ast.FunctionDef,
    ) -> Iterator[Violation]:
        """RPR004, but across modules: the pair lives on a base class the
        single-file walk cannot see from the subclass's file."""
        init = info.methods.get("__init__")
        if init is None:
            return
        if _uses_dynamic_attrs(snap_fn) or _uses_dynamic_attrs(restore_fn):
            return
        covered = _method_self_attrs(snap_fn) | _method_self_attrs(restore_fn)
        # The subclass may extend the pair locally; count its own
        # overrides as coverage too.
        for name in ("snapshot_state", "restore_state", "snapshot", "restore"):
            own = info.methods.get(name)
            if own is not None:
                covered |= _method_self_attrs(own)
        rebound = _rebound_outside_init([info])
        init_lines: dict[str, int] = {}
        for name, lineno in _assigned_self_attrs(init):
            init_lines.setdefault(name, lineno)
        for name, lineno in sorted(init_lines.items(), key=lambda kv: kv[1]):
            if name in covered or name not in rebound:
                continue
            if info.ctx.suppressions.is_volatile(lineno):
                continue
            yield Violation(
                info.path, lineno, 1, self.code,
                f"class {info.name}: 'self.{name}' is assigned in __init__ "
                f"and mutated later, but the inherited snapshot/restore "
                f"pair never covers it; snapshot it, override the pair, or "
                f"mark it '# repro-lint: volatile -- reason'")


# --------------------------------------------------------------------- #
# RPR008: stats-field registration
# --------------------------------------------------------------------- #

_STATS_CLASS = "TraversalStats"
_STATS_TUPLES = ("SUPERVISION_STATS_FIELDS", "DURABILITY_STATS_FIELDS")
_SUPERVISION_PREFIXES = ("worker_", "supervision_")
_SUPERVISION_EXTRAS = frozenset({"degraded_ranks"})
_DURABILITY_PREFIX = "durable_"
#: Local names a mutation target must hang off to count as "the stats
#: object" (``stats.X += 1``, ``self.stats.X = ...``, ``self._stats...``).
_STATS_NAMES = frozenset({"stats", "_stats"})


@register
class StatsRegistration(ProjectRule):
    """See module docstring — RPR008."""

    code = "RPR008"
    summary = "mutated stats counters must be declared & registered"
    scoped_dirs = ("runtime", "comm")

    def check_project(self, index: ProjectIndex) -> list[Violation]:
        stats = self._find_stats_class(index)
        if stats is None:
            return []
        declared, decl_lines = self._declared_fields(stats)
        properties = {
            n.name for n in stats.node.body
            if isinstance(n, ast.FunctionDef)
            and any(isinstance(d, ast.Name) and d.id == "property"
                    for d in n.decorator_list)
        }
        tuples = self._field_tuples(stats.ctx)

        out: list[Violation] = []
        out.extend(self._check_mutations(index, declared | properties))
        out.extend(self._check_families(stats, declared, decl_lines, tuples))
        out.extend(self._check_tuple_entries(stats, declared, tuples))
        return out

    # ------------------------------------------------------------------ #
    @staticmethod
    def _find_stats_class(index: ProjectIndex) -> ClassInfo | None:
        candidates = index.by_name.get(_STATS_CLASS, [])
        for c in candidates:
            if c.path.endswith("trace.py"):
                return c
        return candidates[0] if candidates else None

    @staticmethod
    def _declared_fields(stats: ClassInfo) -> tuple[set[str], dict[str, int]]:
        declared: set[str] = set()
        lines: dict[str, int] = {}
        for node in stats.node.body:
            target = None
            if isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                              ast.Name):
                target = node.target
            elif (isinstance(node, ast.Assign) and len(node.targets) == 1
                  and isinstance(node.targets[0], ast.Name)):
                target = node.targets[0]
            if target is not None:
                declared.add(target.id)
                lines[target.id] = target.lineno
        return declared, lines

    @staticmethod
    def _field_tuples(ctx) -> dict[str, tuple[frozenset[str], int]]:
        """Module-level ``*_STATS_FIELDS`` tuples: name -> (entries, line)."""
        out: dict[str, tuple[frozenset[str], int]] = {}
        for node in ctx.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            name = node.targets[0].id
            if name not in _STATS_TUPLES:
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                entries = frozenset(
                    e.value for e in node.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                )
                out[name] = (entries, node.lineno)
        return out

    # ------------------------------------------------------------------ #
    def _check_mutations(
        self, index: ProjectIndex, known: set[str]
    ) -> Iterator[Violation]:
        for path, ctx in sorted(index.files.items()):
            if not set(Path(path).parts) & set(self.scoped_dirs):
                continue
            for node in ast.walk(ctx.tree):
                targets: list[ast.expr] = []
                if isinstance(node, ast.AugAssign):
                    targets = [node.target]
                elif isinstance(node, ast.Assign):
                    targets = list(node.targets)
                for t in targets:
                    if not isinstance(t, ast.Attribute):
                        continue
                    base = t.value
                    base_name = (base.id if isinstance(base, ast.Name)
                                 else base.attr
                                 if isinstance(base, ast.Attribute) else None)
                    if base_name not in _STATS_NAMES:
                        continue
                    if t.attr in known:
                        continue
                    yield Violation(
                        path, t.lineno, t.col_offset + 1, self.code,
                        f"'stats.{t.attr}' is mutated here but is not a "
                        f"declared TraversalStats field; declare it (and "
                        f"register it in the summary()/*_STATS_FIELDS "
                        f"reporting surface) or the equivalence gates "
                        f"cannot see it")

    def _check_families(
        self, stats: ClassInfo, declared: set[str],
        decl_lines: dict[str, int],
        tuples: dict[str, tuple[frozenset[str], int]],
    ) -> Iterator[Violation]:
        supervision = tuples.get(_STATS_TUPLES[0], (frozenset(), 0))[0]
        durability = tuples.get(_STATS_TUPLES[1], (frozenset(), 0))[0]
        for name in sorted(declared):
            line = decl_lines.get(name, stats.node.lineno)
            in_supervision_family = (
                name.startswith(_SUPERVISION_PREFIXES)
                or name in _SUPERVISION_EXTRAS)
            if in_supervision_family and name not in supervision:
                yield Violation(
                    stats.path, line, 1, self.code,
                    f"TraversalStats.{name} belongs to the supervision "
                    f"counter family but is missing from "
                    f"SUPERVISION_STATS_FIELDS; the worker-chaos "
                    f"bit-identity gate would wrongly compare it")
            elif name.startswith(_DURABILITY_PREFIX) and name not in durability:
                yield Violation(
                    stats.path, line, 1, self.code,
                    f"TraversalStats.{name} belongs to the durability "
                    f"counter family but is missing from "
                    f"DURABILITY_STATS_FIELDS; the crash-restart "
                    f"bit-identity gate would wrongly compare it")

    def _check_tuple_entries(
        self, stats: ClassInfo, declared: set[str],
        tuples: dict[str, tuple[frozenset[str], int]],
    ) -> Iterator[Violation]:
        for tuple_name, (entries, line) in sorted(tuples.items()):
            for entry in sorted(entries - declared):
                yield Violation(
                    stats.path, line, 1, self.code,
                    f"{tuple_name} lists '{entry}' which is not a declared "
                    f"TraversalStats field; the exclusion is dead and the "
                    f"gates' field arithmetic is off by one")


# --------------------------------------------------------------------- #
# RPR009: fork-safety
# --------------------------------------------------------------------- #

_FORK_UNSAFE_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Barrier", "multiprocessing.Lock", "multiprocessing.RLock",
    "multiprocessing.Queue", "multiprocessing.SimpleQueue",
    "multiprocessing.Condition", "multiprocessing.Event",
    "multiprocessing.Semaphore", "socket.socket",
})
_FORK_UNSAFE_BARE = frozenset({"open"})


@register
class ForkSafety(ProjectRule):
    """See module docstring — RPR009."""

    code = "RPR009"
    summary = "no fork-crossing OS resources on simulation state"
    scoped_dirs = ("runtime", "comm", "memory", "core")

    def check_project(self, index: ProjectIndex) -> list[Violation]:
        out: list[Violation] = []
        for path, ctx in sorted(index.files.items()):
            if not set(Path(path).parts) & set(self.scoped_dirs):
                continue
            # Module-level persistent resources.
            for node in ctx.tree.body:
                if isinstance(node, ast.Assign):
                    kind = self._unsafe_ctor(ctx, node.value)
                    if kind is not None:
                        out.append(Violation(
                            path, node.lineno, node.col_offset + 1, self.code,
                            f"module-level {kind} is created at import time "
                            f"and duplicated by every forked worker; create "
                            f"it per-process or route it through the "
                            f"WorkerPool pipe protocol"))
        for info in index.iter_classes():
            if not set(Path(info.path).parts) & set(self.scoped_dirs):
                continue
            checkpointed = _snapshot_pair(index, info) is not None
            for m in info.methods.values():
                for node in ast.walk(m):
                    if not isinstance(node, ast.Assign):
                        continue
                    kind = self._unsafe_ctor(info.ctx, node.value)
                    if kind is None:
                        continue
                    for t in node.targets:
                        attr = _self_attr(t)
                        if attr is None:
                            continue
                        extra = (" — and this class is checkpointed, so the "
                                 "handle would also be pickled into a "
                                 "durable section" if checkpointed else "")
                        out.append(Violation(
                            info.path, node.lineno, node.col_offset + 1,
                            self.code,
                            f"class {info.name}: 'self.{attr}' persists a "
                            f"{kind} across ticks; it crosses the fork "
                            f"boundary un-reopened and breaks worker "
                            f"respawn-and-replay{extra}"))
        return out

    @staticmethod
    def _unsafe_ctor(ctx, value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        dotted = ctx.imports.resolve(value.func)
        if dotted in _FORK_UNSAFE_CTORS:
            return f"'{dotted}()' resource"
        if (isinstance(value.func, ast.Name)
                and value.func.id in _FORK_UNSAFE_BARE):
            return "file handle (open(...))"
        return None
