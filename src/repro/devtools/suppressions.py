"""Suppression pragmas: ``# repro-lint: disable=...`` and ``volatile``.

Two pragma forms are recognised, either as a trailing comment on the
line they apply to, or as a comment-only line immediately above it:

``# repro-lint: disable=RPR001[,RPR002...] -- reason``
    Suppress the named rules on this line.  The reason string after
    ``--`` is **required**: a suppression without one is itself reported
    (``RPR000``) and the suppression is not honoured, so a bare pragma
    can never silently hide a violation.

``# repro-lint: volatile -- reason``
    On a ``self.attr = ...`` line inside ``__init__``: exempt that
    attribute from the RPR004 snapshot-completeness check.  The reason
    is required for the same auditability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import re

from repro.devtools.report import Violation

#: Meta-rule code for malformed pragmas.
META_RULE = "RPR000"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|volatile)"
    r"(?:=(?P<rules>[A-Za-z0-9_, ]+))?"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)
_RULE_CODE_RE = re.compile(r"^RPR\d{3}$")


@dataclass
class SuppressionTable:
    """Per-file pragma index, built once from the raw source lines."""

    #: line number -> rule codes disabled on that line
    disabled: dict[int, frozenset[str]] = field(default_factory=dict)
    #: line numbers carrying a ``volatile`` marker
    volatile: set[int] = field(default_factory=set)
    #: malformed-pragma violations (reported unconditionally)
    errors: list[Violation] = field(default_factory=list)

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self.disabled.get(line, ())

    def is_volatile(self, line: int) -> bool:
        return line in self.volatile


def scan_pragmas(path: str, lines: list[str]) -> SuppressionTable:
    """Build the pragma table for one file.

    ``lines`` are raw source lines; line numbers are 1-based to match
    the AST.  Pragmas inside string literals are not distinguished from
    real comments — the pragma grammar is restrictive enough that false
    matches are implausible in practice.
    """
    table = SuppressionTable()
    for raw_lineno, text in enumerate(lines, start=1):
        if "repro-lint" not in text:
            continue
        hash_pos = text.find("#")
        if hash_pos < 0:
            continue
        # A comment-only pragma line governs the line below it; a trailing
        # pragma governs its own line.
        standalone = text.lstrip().startswith("#")
        lineno = raw_lineno + 1 if standalone else raw_lineno
        match = _PRAGMA_RE.search(text, hash_pos)
        if match is None:
            table.errors.append(
                Violation(path, raw_lineno, hash_pos + 1, META_RULE,
                          "malformed repro-lint pragma (expected "
                          "'disable=RPR### -- reason' or 'volatile -- reason')")
            )
            continue
        kind = match.group("kind")
        reason = match.group("reason")
        col = match.start() + 1
        if not reason:
            table.errors.append(
                Violation(path, raw_lineno, col, META_RULE,
                          f"repro-lint {kind} pragma requires a reason "
                          f"('... -- why this is safe'); suppression not honoured")
            )
            continue
        if kind == "volatile":
            if match.group("rules"):
                table.errors.append(
                    Violation(path, raw_lineno, col, META_RULE,
                              "volatile pragma takes no rule list")
                )
                continue
            table.volatile.add(lineno)
            continue
        # kind == "disable"
        raw_rules = match.group("rules") or ""
        codes = [c.strip() for c in raw_rules.split(",") if c.strip()]
        bad = [c for c in codes if not _RULE_CODE_RE.match(c)]
        if not codes or bad:
            table.errors.append(
                Violation(path, raw_lineno, col, META_RULE,
                          f"disable pragma needs rule codes like RPR003 "
                          f"(got {raw_rules!r}); suppression not honoured")
            )
            continue
        existing = table.disabled.get(lineno, frozenset())
        table.disabled[lineno] = existing | frozenset(codes)
    return table
