"""The two-phase lint driver: (1) parse + index, (2) file & project rules.

``run_lint_tree`` is the one entry point behind both the CLI and the
library helpers:

Phase 1 — *acquire*.  Expand paths, hash every candidate file, consult
the :class:`~repro.devtools.cache.LintCache` (when enabled).  A per-file
cache hit supplies that file's violations without parsing; a project
cache hit (tree digest unchanged) skips the index build entirely, so a
fully-warm run parses zero files.

Phase 2 — *analyze*.  Run the per-file rules over each freshly parsed
:class:`~repro.devtools.walker.FileContext`, then build one
:class:`~repro.devtools.project.ProjectIndex` and run the project rules
(RPR006-RPR009) over it.  Suppression pragmas apply uniformly: project
violations are mapped back to their file's pragma table before
reporting.

Finally the optional committed baseline is subtracted (and staleness
computed) — see :mod:`repro.devtools.baseline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.devtools.baseline import Baseline
from repro.devtools.cache import LintCache, file_digest, tree_digest
from repro.devtools.report import Violation
from repro.devtools.walker import (
    DEFAULT_EXCLUDES,
    FileContext,
    display_path,
    iter_python_files,
    lint_file,
)


@dataclass
class LintResult:
    """Everything a caller (CLI, CI gate, tests) needs from one run."""

    violations: list[Violation]
    checked_files: int = 0
    #: Files actually parsed this run (0 on a fully-warm cache).
    parsed_files: int = 0
    cache_enabled: bool = False
    #: Per-file cache hits (file-rule results served without analysis).
    cache_hits: int = 0
    #: Whether the project-rule pass was served from cache.
    project_cache_hit: bool = False
    #: Violations subtracted by the baseline.
    baselined: int = 0
    #: Baseline entries that no longer match any violation.
    stale_baseline: list[dict] = field(default_factory=list)


def run_lint_tree(
    paths: Sequence[str | Path],
    *,
    rules: Sequence | None = None,
    excludes: frozenset[str] = DEFAULT_EXCLUDES,
    cache_dir: str | Path | None = None,
    baseline_path: str | Path | None = None,
    update_baseline: bool = False,
) -> LintResult:
    """Lint ``paths`` and return a :class:`LintResult`; see module doc."""
    from repro.devtools.project import ProjectIndex, ProjectRule
    from repro.devtools.rules import all_rules

    active = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in active if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]
    codes = tuple(sorted(r.code for r in active))

    cache = LintCache(cache_dir, codes) if cache_dir is not None else None
    result = LintResult(violations=[], cache_enabled=cache is not None)

    # ---- phase 1: acquire ------------------------------------------- #
    entries: list[tuple[Path, str, str]] = []  # (file, shown, digest)
    for f in iter_python_files(paths, excludes=excludes):
        shown = display_path(f)
        try:
            data = f.read_bytes()
        except OSError:
            continue
        entries.append((f, shown, file_digest(data)))
    result.checked_files = len(entries)

    tree_key = tree_digest([(shown, digest) for _, shown, digest in entries])
    project_cached: list[Violation] | None = None
    if cache is not None and project_rules:
        project_cached = cache.project_violations(tree_key)
    need_index = bool(project_rules) and project_cached is None

    contexts: dict[str, FileContext] = {}
    for f, shown, digest in entries:
        cached = cache.file_violations(shown, digest) if cache else None
        if cached is not None:
            result.cache_hits += 1
            result.violations.extend(cached)
            if not need_index:
                continue  # nothing left that needs this file's AST
        try:
            ctx = FileContext.parse(f, shown)
        except SyntaxError as exc:
            result.parsed_files += 1
            if cached is None:
                broken = [Violation(shown, exc.lineno or 1, (exc.offset or 1),
                                    "RPR000", f"syntax error: {exc.msg}")]
                result.violations.extend(broken)
                if cache is not None:
                    cache.store_file(shown, digest, broken)
            continue
        result.parsed_files += 1
        contexts[shown] = ctx
        if cached is None:
            file_viols = lint_file(ctx, file_rules)
            result.violations.extend(file_viols)
            if cache is not None:
                cache.store_file(shown, digest, file_viols)

    # ---- phase 2: project rules ------------------------------------- #
    if project_rules:
        if project_cached is not None:
            result.project_cache_hit = True
            result.violations.extend(project_cached)
        else:
            index = ProjectIndex.build(contexts.values())
            project_viols: list[Violation] = []
            for rule in project_rules:
                for v in rule.check_project(index):
                    ctx = index.files.get(v.path)
                    if (ctx is not None
                            and ctx.suppressions.is_suppressed(v.line, v.rule)):
                        continue
                    project_viols.append(v)
            result.violations.extend(project_viols)
            if cache is not None:
                cache.store_project(tree_key, project_viols)

    if cache is not None:
        cache.save({shown for _, shown, _ in entries})

    result.violations.sort()

    # ---- baseline ---------------------------------------------------- #
    if baseline_path is not None:
        if update_baseline:
            Baseline.write(baseline_path, result.violations)
        baseline = Baseline.load(baseline_path)
        applied = baseline.apply(result.violations)
        result.violations = applied.kept
        result.baselined = applied.suppressed
        result.stale_baseline = applied.stale
    return result
