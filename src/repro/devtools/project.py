"""Project-wide analysis: parse the tree once, index it, feed ProjectRules.

The per-file rules (RPR001-RPR005) see one :class:`FileContext` at a
time, which is exactly as far as a file-scoped invariant reaches.  The
parallel/durability invariants added by the worker pool, supervision and
durable-checkpoint layers are *cross-module* by construction: a visitor
class defined in ``algorithms/`` must pickle across a worker pipe opened
in ``runtime/parallel.py``; a ``snapshot_state`` written in ``comm/``
must restore the attribute set a base class in another module declared;
a ``stats.X`` counter bumped in ``runtime/`` must be a declared field of
``TraversalStats`` in ``runtime/trace.py``.

This module supplies the shared substrate for those rules:

:class:`ProjectIndex`
    One parse of the whole tree, then a module index, a class index with
    resolved (cross-module) base names, a def-site index and an
    approximate call graph.  Rules query it instead of re-walking files.

:class:`ProjectRule`
    Base class for rules that run once per *tree* instead of once per
    file.  ``check(ctx)`` is a no-op so project rules compose with the
    per-file driver; ``check_project(index)`` does the work.

Name resolution is intentionally approximate (``ast`` only — nothing is
imported or executed): dotted names are resolved through each file's
import-alias map, and class lookups fall back to unique-short-name
matching so the same rules work on the real tree and on single-file test
fixtures.  Ambiguity resolves to "unknown", never to a guess, keeping
the rules' false-positive rate at the pragma-worthy level.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Iterable, Iterator

from repro.devtools.report import Violation
from repro.devtools.rules import Rule
from repro.devtools.walker import FileContext

#: Attribute-call names that hand an object to another process or to a
#: pickle stream: mailbox/queue emission (visitor envelopes cross worker
#: pipes batched per tick) and explicit pickling (durable checkpoint
#: sections).  Used by the call graph and the pickle-safety rule.
PIPE_SINKS = frozenset(
    {"send", "send_batch", "send_stream", "push", "push_batch", "dumps"}
)


def module_dotted(path: str) -> str:
    """Best-effort dotted module name for a display path.

    ``src/repro/runtime/trace.py`` -> ``repro.runtime.trace``; paths
    outside a ``src`` root keep their trailing components so tmp-dir
    fixtures still get stable, distinct names.
    """
    parts = [p for p in PurePath(path).parts if p not in ("/", "\\")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    return ".".join(parts)


@dataclass
class ClassInfo:
    """One class definition plus everything the project rules ask about."""

    key: str  #: ``<module>.<qualname>`` — unique within the index
    module: str
    path: str
    qualname: str
    node: ast.ClassDef
    ctx: FileContext
    #: Base-class names resolved through the file's import map (dotted
    #: where the import map knows the origin, bare otherwise).
    base_names: tuple[str, ...]
    #: Function the class is defined inside, when local (else None).
    enclosing_function: ast.FunctionDef | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def methods(self) -> dict[str, ast.FunctionDef]:
        return {
            n.name: n for n in self.node.body if isinstance(n, ast.FunctionDef)
        }


@dataclass
class ProjectIndex:
    """The one-parse-per-run index every :class:`ProjectRule` queries."""

    #: display path -> parsed context, for suppression lookups.
    files: dict[str, FileContext] = field(default_factory=dict)
    #: dotted module name -> parsed context.
    modules: dict[str, FileContext] = field(default_factory=dict)
    #: ``<module>.<qualname>`` -> class info.
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: short class name -> every class carrying it.
    by_name: dict[str, list[ClassInfo]] = field(default_factory=dict)
    #: def-site index: ``<module>.<qualname>`` -> function node.
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: approximate call graph: function key -> resolved callee names
    #: (dotted through the import map) plus bare attribute-call names.
    calls: dict[str, frozenset[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, contexts: Iterable[FileContext]) -> "ProjectIndex":
        index = cls()
        for ctx in contexts:
            index._add_file(ctx)
        return index

    def _add_file(self, ctx: FileContext) -> None:
        mod = module_dotted(ctx.path)
        self.files[ctx.path] = ctx
        self.modules[mod] = ctx
        self._walk(ctx, mod, ctx.tree, qual=(), enclosing=None)

    def _walk(
        self,
        ctx: FileContext,
        mod: str,
        node: ast.AST,
        qual: tuple[str, ...],
        enclosing: ast.FunctionDef | None,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qn = ".".join(qual + (child.name,))
                info = ClassInfo(
                    key=f"{mod}.{qn}",
                    module=mod,
                    path=ctx.path,
                    qualname=qn,
                    node=child,
                    ctx=ctx,
                    base_names=tuple(
                        b for b in (
                            ctx.imports.resolve(base) for base in child.bases
                        ) if b is not None
                    ),
                    enclosing_function=enclosing,
                )
                self.classes[info.key] = info
                self.by_name.setdefault(child.name, []).append(info)
                self._walk(ctx, mod, child, qual + (child.name,), enclosing)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qn = ".".join(qual + (child.name,))
                key = f"{mod}.{qn}"
                if isinstance(child, ast.FunctionDef):
                    self.functions[key] = child
                self.calls[key] = self._called_names(ctx, child)
                self._walk(
                    ctx, mod, child, qual + (child.name,),
                    child if isinstance(child, ast.FunctionDef) else enclosing,
                )
            else:
                self._walk(ctx, mod, child, qual, enclosing)

    @staticmethod
    def _called_names(ctx: FileContext, fn: ast.AST) -> frozenset[str]:
        out: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.resolve(node.func)
            if dotted is not None:
                out.add(dotted)
            if isinstance(node.func, ast.Attribute):
                out.add(node.func.attr)
        return frozenset(out)

    # ------------------------------------------------------------------ #
    def iter_classes(self) -> Iterator[ClassInfo]:
        yield from self.classes.values()

    def resolve_class(self, dotted: str) -> ClassInfo | None:
        """Class info for a (possibly partial) dotted name, or None.

        Exact key match first; then a unique short-name match; then a
        suffix match among same-named candidates.  Ambiguity -> None.
        """
        hit = self.classes.get(dotted)
        if hit is not None:
            return hit
        tail = dotted.rsplit(".", 1)[-1]
        candidates = self.by_name.get(tail, [])
        if len(candidates) == 1:
            return candidates[0]
        for c in candidates:
            if c.key.endswith("." + dotted):
                return c
        return None

    @staticmethod
    def _base_matches(base: str, target: str) -> bool:
        return (base == target
                or target.endswith("." + base)
                or base.endswith("." + target))

    def is_subclass_of(self, info: ClassInfo, targets: frozenset[str]) -> bool:
        """Transitive (cross-module) subclass test against dotted names."""
        seen: set[str] = set()
        stack = [info]
        while stack:
            cur = stack.pop()
            if cur.key in seen:
                continue
            seen.add(cur.key)
            for base in cur.base_names:
                if any(self._base_matches(base, t) for t in targets):
                    return True
                nxt = self.resolve_class(base)
                if nxt is not None:
                    stack.append(nxt)
        return False

    def mro_method(
        self, info: ClassInfo, name: str
    ) -> tuple[ClassInfo, ast.FunctionDef] | None:
        """Resolve ``name`` on the class or (left-to-right, depth-first)
        its indexed base classes — the cross-module lookup RPR004's
        single-file view cannot do."""
        seen: set[str] = set()

        def walk(cur: ClassInfo) -> tuple[ClassInfo, ast.FunctionDef] | None:
            if cur.key in seen:
                return None
            seen.add(cur.key)
            fn = cur.methods.get(name)
            if fn is not None:
                return cur, fn
            for base in cur.base_names:
                nxt = self.resolve_class(base)
                if nxt is not None:
                    hit = walk(nxt)
                    if hit is not None:
                        return hit
            return None

        return walk(info)

    def mro_chain(self, info: ClassInfo) -> list[ClassInfo]:
        """The class plus every indexed ancestor (cycle-safe)."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = [info]
        while stack:
            cur = stack.pop(0)
            if cur.key in seen:
                continue
            seen.add(cur.key)
            out.append(cur)
            for base in cur.base_names:
                nxt = self.resolve_class(base)
                if nxt is not None:
                    stack.append(nxt)
        return out


class ProjectRule(Rule):
    """Base class for tree-scoped rules.

    ``check`` (the per-file hook) is a no-op so project rules can ride
    the same registry and selection machinery as file rules; the driver
    calls ``check_project`` once with the built index.  Suppression
    pragmas still apply — the driver maps each violation back to its
    file's pragma table before reporting.
    """

    scope = "project"

    def check(self, ctx: FileContext) -> list[Violation]:
        return []

    def check_project(self, index: ProjectIndex) -> list[Violation]:
        raise NotImplementedError
