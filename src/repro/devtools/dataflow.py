"""RPR003: unordered iteration feeding per-rank / send order.

A heuristic, scope-local dataflow pass: it tracks names bound to
set-typed expressions inside one function scope, then flags ``for``
loops and comprehensions that iterate an unordered source (a set
literal/comprehension, a ``set()``/``frozenset()`` call, a
``.keys()/.values()/.items()`` view, or a name bound to one of those)
**when the loop body reaches a send-order-sensitive sink** — a mailbox
or network send, a visitor push, or indexing into the per-rank
collections.  Wrapping the iterable in ``sorted(...)`` (or re-binding
the name from ``sorted(...)``) clears the taint.

Set iteration order is salted per process in CPython, and dict
insertion order can encode rank-arrival order, so either one flowing
into message emission silently breaks the bit-identical-replay
guarantee the equivalence gates enforce.
"""

from __future__ import annotations

import ast

from repro.devtools.report import Violation
from repro.devtools.rules import Rule, register
from repro.devtools.walker import FileContext

#: Calls producing (or preserving) unordered iteration order.
_UNORDERED_CTORS = frozenset({"set", "frozenset"})
_ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})
_ORDERING_CALLS = frozenset({"sorted"})
_DICT_VIEWS = frozenset({"keys", "values", "items"})

#: Send-order-sensitive sinks: anything that emits messages/visitors.
_SEND_SINKS = frozenset(
    {"send", "send_batch", "send_stream", "send_packet", "push", "push_batch",
     "_enqueue"}
)
#: Per-rank collections: indexing these inside the loop means the loop
#: order is a per-rank processing order.
_RANK_COLLECTIONS = frozenset(
    {"mailboxes", "ranks", "detectors", "spills", "caches", "partitions"}
)


class _ScopeTaint:
    """Name -> unordered? classification, in statement order."""

    def __init__(self) -> None:
        #: (lineno, name, unordered) events, appended in walk order.
        self.events: list[tuple[int, str, bool]] = []

    def record(self, node: ast.Assign | ast.AnnAssign, unordered_fn) -> None:
        value = node.value
        if value is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for t in targets:
            if isinstance(t, ast.Name):
                self.events.append((node.lineno, t.id, unordered_fn(value)))

    def unordered_at(self, name: str, lineno: int) -> bool:
        state = False
        for event_line, event_name, unordered in self.events:
            if event_name == name and event_line < lineno:
                state = unordered
        return state


@register
class UnorderedIterationIntoSendOrder(Rule):
    """See module docstring."""

    code = "RPR003"
    summary = "no unordered set/dict-view iteration feeding send order"

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        for scope in self._scopes(ctx.tree):
            out.extend(self._check_scope(ctx, scope))
        return out

    # ----------------------------------------------------------------- #
    @staticmethod
    def _scopes(tree: ast.Module):
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @classmethod
    def _walk_scope(cls, scope: ast.AST):
        """Walk a scope without descending into nested function scopes."""
        stack = list(
            ast.iter_child_nodes(scope)
        )
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, ctx: FileContext, scope: ast.AST) -> list[Violation]:
        taint = _ScopeTaint()

        def unordered(expr: ast.expr) -> bool:
            return self._is_unordered(expr, taint, expr.lineno)

        nodes = sorted(
            self._walk_scope(scope),
            key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)),
        )
        for node in nodes:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                taint.record(node, unordered)

        out: list[Violation] = []
        for node in nodes:
            if isinstance(node, ast.For):
                if (self._is_unordered(node.iter, taint, node.lineno)
                        and self._has_sink(node.body + node.orelse)):
                    out.append(self._flag(ctx, node))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                                   ast.DictComp)):
                if (any(self._is_unordered(g.iter, taint, node.lineno)
                        for g in node.generators)
                        and self._has_sink([node])):
                    out.append(self._flag(ctx, node))
        return out

    def _flag(self, ctx: FileContext, node: ast.AST) -> Violation:
        return self.violation(
            ctx, node,
            "iteration over an unordered set/dict view flows into per-rank "
            "or mailbox send order; wrap the iterable in sorted(...) so the "
            "emission order is deterministic")

    # ----------------------------------------------------------------- #
    @classmethod
    def _is_unordered(cls, expr: ast.expr, taint: _ScopeTaint, lineno: int) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return taint.unordered_at(expr.id, lineno)
        if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (cls._is_unordered(expr.left, taint, lineno)
                    or cls._is_unordered(expr.right, taint, lineno))
        if not isinstance(expr, ast.Call):
            return False
        fn = expr.func
        if isinstance(fn, ast.Name):
            if fn.id in _ORDERING_CALLS:
                return False
            if fn.id in _UNORDERED_CTORS:
                return True
            if fn.id in _ORDER_PRESERVING and expr.args:
                return cls._is_unordered(expr.args[0], taint, lineno)
            return False
        if isinstance(fn, ast.Attribute):
            if fn.attr in _DICT_VIEWS:
                return True
            if fn.attr in {"union", "intersection", "difference",
                           "symmetric_difference"}:
                return True
        return False

    @staticmethod
    def _has_sink(body: list[ast.AST]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _SEND_SINKS):
                    return True
                if isinstance(node, ast.Subscript):
                    value = node.value
                    name = None
                    if isinstance(value, ast.Attribute):
                        name = value.attr
                    elif isinstance(value, ast.Name):
                        name = value.id
                    if name in _RANK_COLLECTIONS:
                        return True
        return False
