"""Violation records and report rendering (text, JSON and SARIF)."""

from __future__ import annotations

from dataclasses import asdict, dataclass
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.devtools.runner import LintResult


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location.

    Ordered by (path, line, col, rule) so reports are stable regardless
    of the order rules ran in.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def render_text(violations: list[Violation]) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [v.format() for v in sorted(violations)]
    n = len(violations)
    lines.append(f"repro lint: {n} violation{'s' if n != 1 else ''}")
    return "\n".join(lines)


def render_json(
    violations: list[Violation],
    *,
    checked_files: int = 0,
    result: "LintResult | None" = None,
) -> str:
    """Machine-readable report (the ``--format json`` CI gate input).

    The stable core (``checked_files`` / ``violation_count`` /
    ``violations``) is byte-identical between a cold and a warm run on
    the same tree; the run-dependent cache/baseline telemetry lives
    under its own keys so gates can ignore it.
    """
    payload = {
        "checked_files": checked_files,
        "violation_count": len(violations),
        "violations": [asdict(v) for v in sorted(violations)],
    }
    if result is not None:
        payload["cache"] = {
            "enabled": result.cache_enabled,
            "files_reparsed": result.parsed_files,
            "file_hits": result.cache_hits,
            "project_hit": result.project_cache_hit,
        }
        payload["baseline"] = {
            "suppressed": result.baselined,
            "stale_entries": result.stale_baseline,
        }
    return json.dumps(payload, indent=2)


#: SARIF 2.1.0 skeleton constants (the CI annotation format).
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def render_sarif(violations: list[Violation], *, checked_files: int = 0) -> str:
    """SARIF 2.1.0 report, one result per violation — the format GitHub
    code scanning ingests to annotate PR diffs in place."""
    from repro.devtools.rules import RULE_REGISTRY

    seen_rules = sorted({v.rule for v in violations})
    rules = []
    for code in seen_rules:
        cls = RULE_REGISTRY.get(code)
        summary = getattr(cls, "summary", "") if cls else ""
        if code == "RPR000":
            summary = "malformed pragma / unparsable file"
        rules.append({
            "id": code,
            "shortDescription": {"text": summary or code},
        })
    results = [
        {
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path.replace("\\", "/")},
                    "region": {"startLine": v.line, "startColumn": v.col},
                },
            }],
        }
        for v in sorted(violations)
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": rules,
                },
            },
            "properties": {"checked_files": checked_files},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2)
