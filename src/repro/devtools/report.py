"""Violation records and report rendering (text and JSON)."""

from __future__ import annotations

from dataclasses import asdict, dataclass
import json


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location.

    Ordered by (path, line, col, rule) so reports are stable regardless
    of the order rules ran in.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def render_text(violations: list[Violation]) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [v.format() for v in sorted(violations)]
    n = len(violations)
    lines.append(f"repro lint: {n} violation{'s' if n != 1 else ''}")
    return "\n".join(lines)


def render_json(violations: list[Violation], *, checked_files: int = 0) -> str:
    """Machine-readable report (the ``--format json`` CI gate input)."""
    payload = {
        "checked_files": checked_files,
        "violation_count": len(violations),
        "violations": [asdict(v) for v in sorted(violations)],
    }
    return json.dumps(payload, indent=2)
