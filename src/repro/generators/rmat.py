"""RMAT scale-free graph generator (Chakrabarti, Zhan, Faloutsos 2004).

Follows the Graph500 V1.2 specification for the initiator parameters
(A=0.57, B=0.19, C=0.19, D=0.05) — the same configuration the paper uses via
the Boost Graph Library implementation.

The generator is fully vectorised: for ``scale`` levels of Kronecker
recursion it draws one quadrant choice per edge per level and assembles the
source / target bit strings with NumPy integer ops.  Generation is chunked
so hub-growth studies (Figure 1) can stream degree counts for graphs whose
edge lists would not fit in memory all at once.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.generators.graph500 import RMAT_A, RMAT_B, RMAT_C, RMAT_D
from repro.utils.rng import resolve_rng


def rmat_edge_chunks(
    scale: int,
    num_edges: int,
    *,
    a: float = RMAT_A,
    b: float = RMAT_B,
    c: float = RMAT_C,
    d: float = RMAT_D,
    seed: int | np.random.Generator | None = None,
    chunk_size: int = 1 << 22,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(src, dst)`` chunks of an RMAT edge list.

    Each chunk holds at most ``chunk_size`` edges.  The stream is
    deterministic for a fixed ``(seed, chunk_size)`` pair; different chunk
    sizes consume the RNG in a different order and therefore produce a
    different (equally distributed) instance.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    if num_edges < 0:
        raise ValueError(f"num_edges must be >= 0, got {num_edges}")
    total = a + b + c + d
    if not np.isclose(total, 1.0, atol=1e-9):
        raise ValueError(f"RMAT probabilities must sum to 1, got {total}")
    rng = resolve_rng(seed)
    remaining = num_edges
    while remaining > 0:
        m = min(remaining, chunk_size)
        yield _rmat_chunk(scale, m, a, b, c, rng)
        remaining -= m


def rmat_edges(
    scale: int,
    num_edges: int,
    *,
    a: float = RMAT_A,
    b: float = RMAT_B,
    c: float = RMAT_C,
    d: float = RMAT_D,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate an RMAT edge list as two ``int64`` arrays ``(src, dst)``.

    ``scale`` is the base-2 log of the vertex count.  Self loops and
    duplicate edges are retained, as in the Graph500 generator; downstream
    construction (``EdgeList.deduplicated`` / ``without_self_loops``)
    decides what to keep.
    """
    chunks = list(
        rmat_edge_chunks(scale, num_edges, a=a, b=b, c=c, d=d, seed=seed, chunk_size=num_edges or 1)
    )
    if not chunks:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    src = np.concatenate([s for s, _ in chunks])
    dst = np.concatenate([t for _, t in chunks])
    return src, dst


def _rmat_chunk(
    scale: int, m: int, a: float, b: float, c: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``m`` RMAT edges for a ``2**scale``-vertex graph."""
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    a_frac = a / ab  # P(dst bit = 0 | src bit = 0)
    c_frac = c / (1.0 - ab)  # P(dst bit = 0 | src bit = 1)
    for _level in range(scale):
        u = rng.random(m)
        v = rng.random(m)
        src_bit = (u >= ab).astype(np.int64)
        dst_threshold = np.where(src_bit == 0, a_frac, c_frac)
        dst_bit = (v >= dst_threshold).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return src, dst
