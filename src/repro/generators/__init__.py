"""Synthetic graph generators used in the paper's evaluation (Section VII-A).

Three models are provided, mirroring the paper exactly:

* :func:`repro.generators.rmat.rmat_edges` — Graph500 v1.2 RMAT generator.
* :func:`repro.generators.preferential_attachment.preferential_attachment_edges`
  — Barabási–Albert with an optional *random rewire* step that interpolates
  between a PA graph and a random graph.
* :func:`repro.generators.small_world.small_world_edges` — Watts–Strogatz
  graphs with uniform degree and a controllable diameter via rewiring.

After generation, vertex labels should be uniformly permuted (the paper does
this "to destroy any locality artifacts from the generators"); see
:func:`repro.generators.permute.permute_labels`.
"""

from repro.generators.graph500 import Graph500Config
from repro.generators.permute import permute_labels
from repro.generators.preferential_attachment import preferential_attachment_edges
from repro.generators.rmat import rmat_edges
from repro.generators.small_world import small_world_edges

__all__ = [
    "Graph500Config",
    "rmat_edges",
    "preferential_attachment_edges",
    "small_world_edges",
    "permute_labels",
]
