"""Small-world (Watts–Strogatz) generator with controllable diameter.

The paper: "Small World (SW) — Generates graphs with uniform vertex degree
and a controllable diameter.  SW graphs interpolate between a ring graph and
a random graph using a random rewire step."  Used for the triangle-counting
weak scaling (Figure 7, rewire 0–30%) and the diameter-vs-BFS-performance
study (Figure 10).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import resolve_rng


def small_world_edges(
    num_vertices: int,
    degree: int,
    *,
    rewire_probability: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a Watts–Strogatz edge list ``(src, dst)``.

    Starts from a ring lattice where every vertex connects to its
    ``degree // 2`` nearest neighbours on each side (``degree`` must be
    even, as in Watts–Strogatz), then rewires each edge's target to a
    uniformly random vertex with probability ``rewire_probability``.

    With rewire 0 the graph is a ring lattice (diameter ~ ``n / degree``);
    with rewire 1 it is essentially a random graph (diameter ~ ``log n``).
    The returned list has exactly ``num_vertices * degree / 2`` edges, one
    per lattice chord, i.e. it is the *undirected* edge set; symmetrise it
    when building an undirected CSR.
    """
    if degree < 2 or degree % 2 != 0:
        raise ValueError(f"degree must be a positive even integer, got {degree}")
    if num_vertices <= degree:
        raise ValueError(
            f"num_vertices must exceed degree (got n={num_vertices}, degree={degree})"
        )
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError(f"rewire_probability must be in [0, 1], got {rewire_probability}")
    rng = resolve_rng(seed)

    half = degree // 2
    base = np.arange(num_vertices, dtype=np.int64)
    src = np.repeat(base, half)
    offsets = np.tile(np.arange(1, half + 1, dtype=np.int64), num_vertices)
    dst = (src + offsets) % num_vertices

    if rewire_probability > 0.0:
        mask = rng.random(src.size) < rewire_probability
        n_rewire = int(mask.sum())
        if n_rewire:
            dst = dst.copy()
            dst[mask] = rng.integers(0, num_vertices, size=n_rewire, dtype=np.int64)
    return src, dst
