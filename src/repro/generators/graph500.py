"""Graph500 benchmark problem configuration (v1.2 specification).

The Graph500 problem is parameterised by *scale* and *edgefactor*:
``num_vertices = 2**scale`` and ``num_edges = edgefactor * num_vertices``.
The reference edgefactor is 16 ("the majority of vertices will have a low
degree (fewer than 16 for Graph500)").  The RMAT initiator probabilities are
A=0.57, B=0.19, C=0.19, D=0.05.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Graph500 v1.2 RMAT initiator matrix probabilities.
RMAT_A = 0.57
RMAT_B = 0.19
RMAT_C = 0.19
RMAT_D = 0.05

#: Graph500 reference edge factor (average directed edges per vertex).
DEFAULT_EDGEFACTOR = 16


@dataclass(frozen=True)
class Graph500Config:
    """A Graph500 problem instance descriptor.

    ``scale`` is the base-2 logarithm of the vertex count.  The benchmark's
    own terminology is used throughout the harness (e.g. "scale 36 is a
    graph with over 1 trillion edges" — Table II).
    """

    scale: int
    edgefactor: int = DEFAULT_EDGEFACTOR

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.edgefactor < 1:
            raise ValueError(f"edgefactor must be >= 1, got {self.edgefactor}")

    @property
    def num_vertices(self) -> int:
        """``2**scale`` vertices."""
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        """``edgefactor * 2**scale`` directed generator edges."""
        return self.edgefactor << self.scale

    @property
    def csr_bytes(self) -> int:
        """Approximate bytes of an undirected CSR image (8-byte ids, both
        directions), used for external-memory footprint estimates."""
        return 2 * self.num_edges * 8 + (self.num_vertices + 1) * 8
