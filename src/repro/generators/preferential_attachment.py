"""Preferential-attachment (Barabási–Albert) generator with random rewiring.

The paper: "Preferential Attachment (PA) — Generates scale-free graphs.  We
added an optional random rewire step to interpolate between a random graph
and a PA graph for some experiments" (used for Figure 11, where increasing
the rewire probability shrinks the maximum hub degree at constant size).

The implementation uses the classic *repeated-endpoints* sampling trick:
attachment targets are drawn uniformly from the multiset of all previous
edge endpoints, which is exactly degree-proportional sampling, in O(1) per
draw.  The optional rewire pass is vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import resolve_rng


def preferential_attachment_edges(
    num_vertices: int,
    edges_per_vertex: int,
    *,
    rewire_probability: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a PA edge list ``(src, dst)`` with optional random rewiring.

    Each new vertex attaches ``edges_per_vertex`` edges to existing vertices
    chosen proportionally to their current degree.  The seed graph is a
    ``edges_per_vertex + 1``-clique so early draws are well defined.  With
    ``rewire_probability = r``, each edge's target is then replaced by a
    uniform random vertex with probability ``r`` (``r = 1`` yields an
    Erdős–Rényi-like graph with the same edge count, ``r = 0`` pure PA).
    """
    m = edges_per_vertex
    if m < 1:
        raise ValueError(f"edges_per_vertex must be >= 1, got {m}")
    if num_vertices < m + 1:
        raise ValueError(
            f"num_vertices must be >= edges_per_vertex + 1 ({m + 1}), got {num_vertices}"
        )
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError(f"rewire_probability must be in [0, 1], got {rewire_probability}")
    rng = resolve_rng(seed)

    seed_n = m + 1
    seed_src, seed_dst = _clique_edges(seed_n)
    n_growth = num_vertices - seed_n

    src_parts = [seed_src]
    dst_parts = [seed_dst]

    # Multiset of endpoints; sampling an element uniformly == degree-
    # proportional vertex sampling.  Pre-size for all growth edges.
    total_edges = len(seed_src) + n_growth * m
    endpoints = np.empty(2 * total_edges, dtype=np.int64)
    k = 2 * len(seed_src)
    endpoints[0:k:2] = seed_src
    endpoints[1:k:2] = seed_dst

    growth_src = np.repeat(np.arange(seed_n, num_vertices, dtype=np.int64), m)
    growth_dst = np.empty(n_growth * m, dtype=np.int64)
    # Draw one uniform variate per growth edge up front; the index range it
    # selects from grows as edges are added, so the loop is per new vertex.
    unit = rng.random(n_growth * m)
    e = 0
    for _v_offset in range(n_growth):
        picks = (unit[e : e + m] * k).astype(np.int64)
        targets = endpoints[picks]
        growth_dst[e : e + m] = targets
        v = growth_src[e]
        endpoints[k : k + 2 * m : 2] = v
        endpoints[k + 1 : k + 2 * m : 2] = targets
        k += 2 * m
        e += m

    src_parts.append(growth_src)
    dst_parts.append(growth_dst)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)

    if rewire_probability > 0.0:
        mask = rng.random(src.size) < rewire_probability
        n_rewire = int(mask.sum())
        if n_rewire:
            dst = dst.copy()
            dst[mask] = rng.integers(0, num_vertices, size=n_rewire, dtype=np.int64)
    return src, dst


def _clique_edges(n: int) -> tuple[np.ndarray, np.ndarray]:
    """All ``n*(n-1)/2`` edges of a clique on vertices ``0..n-1``."""
    idx_u, idx_v = np.triu_indices(n, k=1)
    return idx_u.astype(np.int64), idx_v.astype(np.int64)
