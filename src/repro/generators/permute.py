"""Uniform vertex-label permutation.

The paper: "After graph generation, all vertex labels are uniformly permuted
to destroy any locality artifacts from the generators."  Without this step,
ring-lattice and PA generators would hand consecutive identifiers to
neighbouring vertices, which would make the contiguous-range partitioners
look artificially good.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import resolve_rng


def permute_labels(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    *,
    seed: int | np.random.Generator | None = None,
    return_permutation: bool = False,
):
    """Relabel all vertices with a uniformly random permutation.

    Returns ``(src', dst')`` — or ``(src', dst', perm)`` if
    ``return_permutation`` — where ``perm[v]`` is the new label of vertex
    ``v``.
    """
    if num_vertices < 0:
        raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
    if src.size and (src.max(initial=0) >= num_vertices or dst.max(initial=0) >= num_vertices):
        raise ValueError("edge endpoints exceed num_vertices")
    rng = resolve_rng(seed)
    perm = rng.permutation(num_vertices).astype(np.int64)
    new_src = perm[src]
    new_dst = perm[dst]
    if return_permutation:
        return new_src, new_dst, perm
    return new_src, new_dst
