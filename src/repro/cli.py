"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``generate``     Generate a graph (rmat / pa / sw) and save it to disk.
``bfs``          Run asynchronous BFS on a generated or loaded graph.
``kcore``        Run k-core decomposition.
``triangles``    Run exact (or wedge-sampled) triangle counting.
``pagerank``     Run asynchronous residual-push PageRank.
``graph500``     Run a Graph500-style submission (N validated searches).
``experiment``   Regenerate one paper figure/table by name.
``profile``      cProfile a traversal and print the host-time hotspots.
``lint``         AST determinism & invariant analysis (rules RPR001-RPR009).

Every command prints the simulated performance trace; sizes default to
laptop scale.  Examples::

    python -m repro generate rmat --scale 12 -o graph.npz
    python -m repro bfs --graph graph.npz -p 16 --ghosts 256 --topology 2d
    python -m repro bfs --scale 10 -p 8 --machine bgp
    python -m repro bfs --scale 10 -p 8 --faults seed=7,drop=0.02,crash=12:3
    python -m repro triangles --scale 9 -p 8 --approximate --samples 20000
    python -m repro experiment fig13
    python -m repro profile bfs --scale 12 -p 16 --batch
"""

from __future__ import annotations

import argparse
import sys

from repro.algorithms.bfs import bfs
from repro.algorithms.kcore import kcore
from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangles import triangle_count
from repro.algorithms.wedge_sampling import sample_triangle_estimate
from repro.analysis.teps import bfs_traversed_edges, mteps
from repro.bench.harness import pick_bfs_source
from repro.comm.faults import FaultPlan, WorkerFaultPlan
from repro.generators.preferential_attachment import preferential_attachment_edges
from repro.generators.rmat import rmat_edges
from repro.generators.small_world import small_world_edges
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.graph.io import load_binary_edges, save_binary_edges
from repro.memory.faults import StorageFaultPlan
from repro.runtime.costmodel import bgp_intrepid, hyperion_dit, laptop
from repro.runtime.durability import DurableFaultPlan
from repro.runtime.pressure import StragglerPlan

_MACHINES = {
    "laptop": laptop,
    "bgp": bgp_intrepid,
    "hyperion-dram": lambda: hyperion_dit("dram"),
    "hyperion-nvram": lambda: hyperion_dit("nvram"),
}


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--graph", help="load a .npz edge list instead of generating")
    parser.add_argument("--scale", type=int, default=10,
                        help="RMAT scale when generating (default 10)")
    parser.add_argument("--edgefactor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-p", "--partitions", type=int, default=8)
    parser.add_argument("--ghosts", type=int, default=64)
    parser.add_argument("--strategy", choices=["edge_list", "1d"], default="edge_list")
    parser.add_argument("--topology", choices=["direct", "2d", "3d", "hypercube"],
                        default="direct")
    parser.add_argument("--machine", choices=sorted(_MACHINES), default="laptop")
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject seeded faults, e.g. "
             "'seed=7,drop=0.02,dup=0.01,delay=0.05,maxdelay=3,crash=40:2:6' "
             "(implies reliable delivery; results stay bit-identical)")
    parser.add_argument(
        "--reliable", action="store_true",
        help="run the reliable transport without faults (measures the "
             "protocol's no-fault overhead)")
    parser.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="TICKS",
        help="ticks between crash-recovery checkpoints (default: 16 "
             "whenever the fault plan crashes ranks)")
    parser.add_argument(
        "--mailbox-cap", type=int, default=None, metavar="BYTES",
        help="per-destination cap on mailbox aggregation buffers; overflow "
             "backpressures the sender and spills to external memory "
             "(results stay bit-identical)")
    parser.add_argument(
        "--queue-spill", type=int, default=None, metavar="N",
        help="resident pending-visitor limit per rank; overflow pages "
             "through the external-memory spill log")
    parser.add_argument(
        "--storage-faults", metavar="SPEC", default=None,
        help="inject seeded storage faults, e.g. "
             "'seed=7,readerr=0.05,spike=0.02,torn=0.01,slow=4,retries=3' "
             "(needs an NVRAM machine or an active spill)")
    parser.add_argument(
        "--stragglers", metavar="SPEC", default=None,
        help="slow some ranks down, e.g. "
             "'seed=3,factor=4,fraction=0.25,rebalance=0.5' or "
             "'ranks=1+5,factor=8' (simulated time only)")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the tick loop (default 1 = sequential; "
             "requires fork). Wall-clock only: results, stats and order "
             "digests are bit-identical at any worker count")
    parser.add_argument(
        "--ipc", choices=("ring", "pipe"), default=None,
        help="barrier IPC transport for --workers > 1: 'ring' (default) "
             "ships packet frames through shared-memory rings with zero "
             "pickled bytes per steady-state batch tick; 'pipe' keeps the "
             "pickled multiprocessing pipes. Results are bit-identical "
             "either way")
    parser.add_argument(
        "--worker-faults", metavar="SPEC", default=None,
        help="inject worker-process failures for the supervision layer, "
             "e.g. 'seed=7,kill=4:1,hang=9:0,exita=6:3,forkfail=1' "
             "(kill/hang/exita take tick:rank, '+' joins events; requires "
             "--workers > 1; results stay bit-identical)")
    parser.add_argument(
        "--worker-restarts", type=int, default=None, metavar="N",
        help="per-worker respawn budget when a worker process fails "
             "(default 0 = fail fast; exhaustion degrades the orphaned "
             "ranks to in-process execution)")
    parser.add_argument(
        "--worker-barrier-timeout", type=float, default=None, metavar="SEC",
        help="wall-clock seconds a barrier waits before declaring a "
             "worker hung and force-killing it (default 30 when "
             "supervision is active)")
    parser.add_argument(
        "--durable", metavar="DIR", default=None,
        help="write durable on-disk epoch checkpoints to DIR; a killed run "
             "restarted with --resume continues bit-identically")
    parser.add_argument(
        "--durable-interval", type=int, default=None, metavar="TICKS",
        help="ticks between durable epochs (default 16)")
    parser.add_argument(
        "--durable-keep", type=int, default=None, metavar="N",
        help="retained durable epoch generations — the corruption-fallback "
             "ladder depth (default 2)")
    parser.add_argument(
        "--durable-faults", metavar="SPEC", default=None,
        help="inject durable-checkpoint corruption, e.g. "
             "'seed=7,torn=32,bitflip=16+48,manifest=64,missing=80' "
             "(values are epoch ticks, '+' joins; detection falls back to "
             "the previous valid epoch)")
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from the latest valid epoch in --durable DIR instead "
             "of starting fresh")
    parser.add_argument(
        "--kill-at-tick", type=int, default=None, metavar="T",
        help="SIGKILL this process right after the durable epoch at tick T "
             "commits (crash-restart harness hook; requires --durable)")
    parser.add_argument(
        "--record-digests", action="store_true",
        help="record per-tick visit-order digests plus the whole-run "
             "order digest (bit-identity checks)")
    parser.add_argument(
        "--stats-json", metavar="PATH", default=None,
        help="also dump the full stats and result-array digests as JSON "
             "(what the crash-restart harness compares)")
    parser.add_argument(
        "--detect-races", action="store_true",
        help="instead of one traversal, run baseline + perturbed-rank-order "
             "runs under the reliable transport and report the first tick "
             "where visitor application diverges (exit 1 on divergence); "
             "bfs/kcore/triangles/pagerank only")


def _traversal_kwargs(args) -> dict:
    """Machine/topology/fault kwargs shared by every traversal command."""
    kwargs = dict(machine=_MACHINES[args.machine](), topology=args.topology)
    if args.workers != 1:
        kwargs["workers"] = args.workers
    if args.ipc is not None:
        kwargs["ipc"] = args.ipc
    if args.faults:
        kwargs["faults"] = FaultPlan.from_spec(args.faults)
    if args.reliable:
        kwargs["reliable"] = True
    if args.checkpoint_interval is not None:
        kwargs["checkpoint_interval"] = args.checkpoint_interval
    if args.mailbox_cap is not None:
        kwargs["mailbox_cap"] = args.mailbox_cap
    if args.queue_spill is not None:
        kwargs["queue_spill"] = args.queue_spill
    if args.storage_faults:
        kwargs["storage_faults"] = StorageFaultPlan.from_spec(args.storage_faults)
    if args.stragglers:
        kwargs["stragglers"] = StragglerPlan.from_spec(args.stragglers)
    if args.worker_faults:
        kwargs["worker_faults"] = WorkerFaultPlan.from_spec(args.worker_faults)
    if args.worker_restarts is not None:
        kwargs["worker_restarts"] = args.worker_restarts
    if args.worker_barrier_timeout is not None:
        kwargs["worker_barrier_timeout"] = args.worker_barrier_timeout
    if args.durable:
        kwargs["durable_dir"] = args.durable
    if args.durable_interval is not None:
        kwargs["durable_interval"] = args.durable_interval
    if args.durable_keep is not None:
        kwargs["durable_keep"] = args.durable_keep
    if args.durable_faults:
        kwargs["durable_faults"] = DurableFaultPlan.from_spec(args.durable_faults)
    if args.resume:
        kwargs["durable_resume"] = True
    if args.kill_at_tick is not None:
        kwargs["kill_at_tick"] = args.kill_at_tick
    if args.record_digests:
        kwargs["record_digests"] = True
    return kwargs


def _write_stats_json(path: str, stats, arrays: dict) -> None:
    """Dump the full stats dataclass plus blake2b digests of the result
    arrays — the crash-restart harness compares two of these files
    (excluding ``durable_*`` keys) to prove a resumed run bit-identical."""
    import dataclasses
    import hashlib
    import json

    import numpy as np

    digests: dict[str, str] = {}
    for name in sorted(arrays):
        value = arrays[name]
        if isinstance(value, np.ndarray):
            digests[name] = hashlib.blake2b(
                np.ascontiguousarray(value).tobytes(), digest_size=16
            ).hexdigest()
        else:
            digests[name] = repr(value)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"stats": dataclasses.asdict(stats), "arrays": digests},
            fh, indent=2, sort_keys=True, default=repr,
        )
        fh.write("\n")


def _run_race_detection(args, graph, algorithm_factory, *, batch=False) -> int:
    """Shared ``--detect-races`` path: run the tick-order race check and
    print its verdict instead of a single traversal."""
    from repro.runtime.race import detect_races

    kwargs = _traversal_kwargs(args)
    machine = kwargs.pop("machine")
    topology = kwargs.pop("topology")
    if batch:
        kwargs["batch"] = True
    report = detect_races(
        graph, algorithm_factory, machine=machine, topology=topology, **kwargs
    )
    print(report.summary())
    return 0 if report.clean else 1


def _build_graph(args) -> tuple[EdgeList, DistributedGraph]:
    if args.graph:
        edges = load_binary_edges(args.graph)
        if not edges.sorted_by_src:
            edges = edges.sorted_by_source()
    else:
        src, dst = rmat_edges(args.scale, args.edgefactor << args.scale, seed=args.seed)
        edges = (
            EdgeList.from_arrays(src, dst, 1 << args.scale)
            .permuted(seed=args.seed + 1)
            .simple_undirected()
        )
    graph = DistributedGraph.build(
        edges, args.partitions, strategy=args.strategy, num_ghosts=args.ghosts
    )
    return edges, graph


def _cmd_generate(args) -> int:
    n = 1 << args.scale if args.model == "rmat" else args.vertices
    if args.model == "rmat":
        src, dst = rmat_edges(args.scale, args.edgefactor << args.scale, seed=args.seed)
    elif args.model == "pa":
        src, dst = preferential_attachment_edges(
            args.vertices, args.attach, rewire_probability=args.rewire, seed=args.seed
        )
    else:  # sw
        src, dst = small_world_edges(
            args.vertices, args.degree, rewire_probability=args.rewire, seed=args.seed
        )
    edges = EdgeList.from_arrays(src, dst, n).permuted(seed=args.seed + 1)
    if args.simple:
        edges = edges.simple_undirected()
    save_binary_edges(edges, args.output)
    print(f"wrote {edges.num_edges} edges over {edges.num_vertices} vertices "
          f"to {args.output}")
    return 0


def _cmd_bfs(args) -> int:
    edges, graph = _build_graph(args)
    source = args.source if args.source is not None else pick_bfs_source(edges, seed=args.seed)
    if args.detect_races:
        from repro.algorithms.bfs import BFSAlgorithm

        return _run_race_detection(
            args, graph, lambda: BFSAlgorithm(source), batch=args.batch
        )
    result = bfs(graph, source, batch=args.batch, **_traversal_kwargs(args))
    traversed = bfs_traversed_edges(edges, result.data.levels)
    if args.stats_json:
        _write_stats_json(args.stats_json, result.stats,
                          {"levels": result.data.levels,
                           "parents": result.data.parents})
    print(result.stats.summary())
    print(f"source {source}: reached {result.data.num_reached} vertices, "
          f"depth {result.data.max_level}, "
          f"{mteps(traversed, result.time_us):.3f} MTEPS (simulated)")
    return 0


def _cmd_kcore(args) -> int:
    _, graph = _build_graph(args)
    if args.detect_races:
        from repro.algorithms.kcore import KCoreAlgorithm

        return _run_race_detection(
            args, graph, lambda: KCoreAlgorithm(args.k), batch=args.batch
        )
    result = kcore(graph, args.k, batch=args.batch, **_traversal_kwargs(args))
    if args.stats_json:
        _write_stats_json(args.stats_json, result.stats,
                          {"alive": result.data.alive})
    print(result.stats.summary())
    print(f"{args.k}-core: {result.data.core_size} vertices")
    return 0


def _cmd_triangles(args) -> int:
    _, graph = _build_graph(args)
    if args.detect_races:
        if args.approximate:
            print("--detect-races needs the exact traversal (drop --approximate)",
                  file=sys.stderr)
            return 2
        from repro.algorithms.triangles import TriangleCountAlgorithm

        return _run_race_detection(
            args, graph, TriangleCountAlgorithm, batch=args.batch
        )
    if args.approximate:
        est = sample_triangle_estimate(graph, samples=args.samples, seed=args.seed)
        print(f"estimated triangles: {est.estimate:.0f} "
              f"(+/- {est.std_error:.0f}, {est.samples} wedge samples, "
              f"closure {est.closure_fraction:.4f})")
    else:
        result = triangle_count(graph, batch=args.batch, **_traversal_kwargs(args))
        if args.stats_json:
            _write_stats_json(args.stats_json, result.stats,
                              {"total": result.data.total,
                               "per_vertex": result.data.per_vertex})
        print(result.stats.summary())
        print(f"triangles: {result.data.total}")
    return 0


def _cmd_pagerank(args) -> int:
    _, graph = _build_graph(args)
    if args.detect_races:
        from repro.algorithms.pagerank import PageRankAlgorithm

        return _run_race_detection(
            args, graph,
            lambda: PageRankAlgorithm(damping=args.damping,
                                      threshold=args.threshold),
            batch=args.batch,
        )
    result = pagerank(graph, damping=args.damping, threshold=args.threshold,
                      batch=args.batch, **_traversal_kwargs(args))
    if args.stats_json:
        _write_stats_json(args.stats_json, result.stats,
                          {"scores": result.data.scores})
    print(result.stats.summary())
    print("top vertices:")
    for v, score in result.data.top(args.top):
        print(f"  {v:>10}  {score:.6f}")
    return 0


def _cmd_graph500(args) -> int:
    from repro.bench.graph500 import run_graph500
    from repro.core.traversal import resolve_config

    if args.detect_races:
        print("--detect-races applies to single traversals "
              "(bfs/kcore/triangles/pagerank)", file=sys.stderr)
        return 2
    edges, graph = _build_graph(args)
    kwargs = _traversal_kwargs(args)
    machine = kwargs.pop("machine")
    topology = kwargs.pop("topology")
    run = run_graph500(
        edges, graph, num_searches=args.searches, kernel=args.kernel,
        machine=machine, topology=topology,
        config=resolve_config(**kwargs) if kwargs else None,
        seed=args.seed,
    )
    print(run.summary())
    return 0


def _cmd_profile(args) -> int:
    import time

    from repro.algorithms.connected_components import connected_components
    from repro.algorithms.sssp import sssp
    from repro.bench.profiling import profile_call

    if args.detect_races:
        print("--detect-races applies to single traversals "
              "(bfs/kcore/triangles/pagerank)", file=sys.stderr)
        return 2
    edges, graph = _build_graph(args)
    kwargs = _traversal_kwargs(args)
    if args.algorithm in ("bfs", "sssp"):
        source = (
            args.source if args.source is not None else pick_bfs_source(edges, seed=args.seed)
        )
        runner = bfs if args.algorithm == "bfs" else sssp
        make = lambda batch: lambda: runner(graph, source, batch=batch, **kwargs)  # noqa: E731
    elif args.algorithm == "cc":
        make = lambda batch: lambda: connected_components(graph, batch=batch, **kwargs)  # noqa: E731
    elif args.algorithm == "kcore":
        make = lambda batch: lambda: kcore(graph, args.k, batch=batch, **kwargs)  # noqa: E731
    elif args.algorithm == "triangles":
        make = lambda batch: lambda: triangle_count(graph, batch=batch, **kwargs)  # noqa: E731
    else:
        make = lambda batch: lambda: pagerank(graph, batch=batch, **kwargs)  # noqa: E731
    report = profile_call(make(args.batch), top=args.top)
    print(report.result.stats.summary())
    print(report.summary(top=args.top))
    if args.compare:
        timings = {}
        for batch in (False, True):
            t0 = time.perf_counter()  # repro-lint: disable=RPR002 -- --compare reports real wall-clock, not simulated time
            make(batch)()
            timings[batch] = time.perf_counter() - t0  # repro-lint: disable=RPR002 -- --compare reports real wall-clock, not simulated time
        print(f"object path {timings[False]:.3f}s, batch path {timings[True]:.3f}s "
              f"({timings[False] / timings[True]:.2f}x)")
    return 0


def _cmd_experiment(args) -> int:
    from repro.bench import experiments as experiments_module

    known = sorted(
        name for name in dir(experiments_module)
        if name.startswith(("fig", "table", "ablation")) and not name.startswith("_")
    )
    matches = [name for name in known if name.startswith(args.name)]
    if len(matches) != 1:
        print(f"unknown or ambiguous experiment {args.name!r}; choose from:",
              file=sys.stderr)
        for name in known:
            print(f"  {name}", file=sys.stderr)
        return 2
    rows, report = getattr(experiments_module, matches[0])()
    print(report)
    if args.csv:
        from repro.bench.export import rows_to_csv

        rows_to_csv(rows, args.csv)
        print(f"wrote {len(rows)} rows to {args.csv}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scale-free graph traversal in simulated distributed "
        "(external) memory — IPDPS 2013 reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a graph to a .npz file")
    g.add_argument("model", choices=["rmat", "pa", "sw"])
    g.add_argument("-o", "--output", required=True)
    g.add_argument("--scale", type=int, default=10, help="rmat: log2 vertices")
    g.add_argument("--edgefactor", type=int, default=16)
    g.add_argument("--vertices", type=int, default=1024, help="pa/sw vertex count")
    g.add_argument("--attach", type=int, default=8, help="pa: edges per vertex")
    g.add_argument("--degree", type=int, default=16, help="sw: lattice degree")
    g.add_argument("--rewire", type=float, default=0.0)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--simple", action="store_true",
                   help="symmetrize + dedup before saving")
    g.set_defaults(func=_cmd_generate)

    b = sub.add_parser("bfs", help="asynchronous BFS")
    _add_graph_args(b)
    b.add_argument("--source", type=int, default=None)
    b.add_argument("--batch", action="store_true",
                   help="use the vectorized batch fast path")
    b.set_defaults(func=_cmd_bfs)

    k = sub.add_parser("kcore", help="k-core decomposition")
    _add_graph_args(k)
    k.add_argument("-k", type=int, default=4)
    k.add_argument("--batch", action="store_true",
                   help="use the vectorized batch fast path")
    k.set_defaults(func=_cmd_kcore)

    t = sub.add_parser("triangles", help="triangle counting")
    _add_graph_args(t)
    t.add_argument("--approximate", action="store_true",
                   help="wedge-sampling estimate instead of exact count")
    t.add_argument("--samples", type=int, default=10_000)
    t.add_argument("--batch", action="store_true",
                   help="use the vectorized batch fast path")
    t.set_defaults(func=_cmd_triangles)

    pr = sub.add_parser("pagerank", help="asynchronous PageRank")
    _add_graph_args(pr)
    pr.add_argument("--damping", type=float, default=0.85)
    pr.add_argument("--threshold", type=float, default=1e-4)
    pr.add_argument("--top", type=int, default=10)
    pr.add_argument("--batch", action="store_true",
                   help="use the vectorized batch fast path")
    pr.set_defaults(func=_cmd_pagerank)

    g5 = sub.add_parser("graph500", help="Graph500-style run: N validated "
                        "BFS searches, TEPS statistics")
    _add_graph_args(g5)
    g5.add_argument("--searches", type=int, default=16)
    g5.add_argument("--kernel", choices=["bfs", "sssp"], default="bfs")
    g5.set_defaults(func=_cmd_graph500)

    pf = sub.add_parser("profile", help="cProfile a traversal; print the "
                        "top cumulative host-time hotspots")
    pf.add_argument("algorithm",
                    choices=["bfs", "sssp", "cc", "triangles", "kcore", "pagerank"])
    _add_graph_args(pf)
    pf.add_argument("--source", type=int, default=None,
                    help="bfs/sssp source (default: harness pick)")
    pf.add_argument("-k", type=int, default=4, help="kcore k (default 4)")
    pf.add_argument("--top", type=int, default=20,
                    help="hotspot lines to print (default 20)")
    pf.add_argument("--batch", action="store_true",
                    help="profile the vectorized batch fast path")
    pf.add_argument("--compare", action="store_true",
                    help="also time both paths once and report the "
                         "object-vs-batch wall-clock ratio")
    pf.set_defaults(func=_cmd_profile)

    e = sub.add_parser("experiment", help="regenerate a paper figure/table")
    e.add_argument("name", help="e.g. fig13 or table2 (prefix match)")
    e.add_argument("--csv", help="also export the rows as CSV to this path")
    e.set_defaults(func=_cmd_experiment)

    from repro.devtools.cli import add_lint_args, run_lint

    lt = sub.add_parser(
        "lint",
        help="AST determinism & invariant analysis over the source tree "
             "(rules RPR001-RPR009; see docs/INTERNALS.md)",
    )
    add_lint_args(lt)
    lt.set_defaults(func=run_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
