"""Per-rank distributed visitor queue — Algorithm 1 of the paper.

Each simulated rank owns one :class:`VisitorQueueRank` holding:

* its partition's CSR slice (optionally behind a paged external-memory
  view),
* the per-vertex state copies for its contiguous state range,
* an optional ghost table,
* a local min-heap priority queue of visitors, and
* a mailbox endpoint on the routed aggregation network.

The three procedures map one-to-one onto Algorithm 1:

``push(visitor)``
    Ghost filter (``pre_visit`` on locally stored ghost state), then
    ``mailbox.send(min_owner(vertex), visitor)``.

``check_mailbox(envelopes)``
    For every arriving visitor: ``pre_visit`` against the local state copy;
    on success queue it locally **and forward it to the next replica** when
    ``rank < max_owner(vertex)`` — the chain that stitches split adjacency
    lists back together.  "The replicas are kept loosely consistent because
    visitors are first sent to the master and then forwarded to the chain
    of replicas in an ordered manner."

``process(budget)``
    Pop up to ``budget`` visitors from the local priority queue and run
    their ``visit``; the heap key is ``(priority, tie, seq)`` where ``tie``
    is the vertex id under the Section V-A locality ordering.
"""

from __future__ import annotations

import copy
import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.comm.mailbox import Mailbox
from repro.comm.message import KIND_VISITOR
from repro.core.visitor import ROLE_MASTER, ROLE_REPLICA, Visitor
from repro.memory.spill import NS_QUEUE, QUEUE_ENTRY_OVERHEAD_BYTES
from repro.runtime.trace import RankCounters

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.visitor import AsyncAlgorithm
    from repro.graph.distributed import DistributedGraph
    from repro.graph.ghosts import GhostTable
    from repro.memory.backing import PagedCSR


class VisitorQueueRank:
    """One rank's slice of the distributed asynchronous visitor queue."""

    def __init__(
        self,
        rank: int,
        graph: "DistributedGraph",
        algorithm: "AsyncAlgorithm",
        mailbox: Mailbox,
        *,
        ghost_table: "GhostTable | None" = None,
        paged_csr: "PagedCSR | None" = None,
        locality_ordering: bool = True,
        state_pager=None,
    ) -> None:
        self.rank = rank
        self.graph = graph
        self.algorithm = algorithm
        self.mailbox = mailbox
        self.ghost_table = ghost_table
        self.paged_csr = paged_csr
        self.locality_ordering = locality_ordering
        #: optional fully-external mode: (cache, state_bytes) charging a
        #: page touch per vertex-state access (semi-external leaves state
        #: in DRAM and this None — the paper's design).
        self.state_pager = state_pager
        self.counters = RankCounters()

        part = graph.partitions[rank]
        self.state_lo = part.state_lo
        degrees = graph.global_out_degrees
        min_owners = graph.min_owners
        self.states: list = [
            algorithm.make_state(
                v,
                int(degrees[v]),
                ROLE_MASTER if int(min_owners[v]) == rank else ROLE_REPLICA,
            )
            for v in range(part.state_lo, part.state_hi + 1)
        ]
        self._heap: list[tuple[int, int, int, Visitor]] = []
        self._seq = 0
        #: queue entries currently living in the external spill log
        #: (tick-granularity ledger; see :meth:`sync_spill`).  Deliberately
        #: outside snapshot/restore: the ledger mirrors the spill pager,
        #: which survives a crash un-rolled-back, so restoring an epoch
        #: value would desynchronise the next ``sync_spill`` delta.
        # repro-lint: volatile -- ledger tracks the pager, which is not rolled back on restore
        self._spilled_visitors = 0
        #: race-detector tap: when the engine installs a list here, every
        #: executed visitor appends its vertex (the observable application
        #: order that the per-tick digests hash).  Externally owned and
        #: drained, hence outside snapshot/restore.
        # repro-lint: volatile -- engine-owned observability tap, drained every tick
        self.order_probe: list[int] | None = None

    # ------------------------------------------------------------------ #
    # Graph context exposed to visitors
    # ------------------------------------------------------------------ #
    _STATE_NAMESPACE = 2  # page-cache namespace for vertex state

    def state_of(self, v: int):
        """This rank's state copy for vertex ``v``."""
        idx = v - self.state_lo
        if self.state_pager is not None:
            cache, state_bytes = self.state_pager
            offset = idx * state_bytes
            cache.access_range(offset, offset + state_bytes,
                               namespace=self._STATE_NAMESPACE)
        return self.states[idx]

    def out_edges(self, v: int) -> np.ndarray:
        """This rank's slice of ``v``'s adjacency list (page-metered when
        the graph lives on NVRAM)."""
        if self.paged_csr is not None:
            part = self.graph.partitions[self.rank]
            if part.holds_vertex(v):
                arr = self.paged_csr.neighbors(v)
            else:
                arr = _EMPTY
        else:
            arr = self.graph.out_edges_local(self.rank, v)
        self.counters.edges_scanned += len(arr)
        return arr

    def has_local_edge(self, v: int, w: int) -> bool:
        """Membership test ``w in out_edges(v)`` restricted to the local
        slice (the triangle-counting closing-edge check)."""
        part = self.graph.partitions[self.rank]
        if not part.holds_vertex(v):
            return False
        # Charge the O(log d) binary-search cost once, up front: the page
        # metering of the paged branch is separate from the scan charge.
        self.counters.edges_scanned += max(1, part.csr.degree(v).bit_length())
        if self.paged_csr is not None:
            return self.paged_csr.has_edge(v, w)
        return part.csr.has_edge(v, w)

    @property
    def num_local_states(self) -> int:
        return len(self.states)

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def push(self, visitor: Visitor) -> None:
        """Algorithm 1, PUSH: ghost filter, then send to the master."""
        self.counters.pushes += 1
        vertex = visitor.vertex
        master = self.graph.min_owner(vertex)
        if self.ghost_table is not None and self.ghost_table.has_local_ghost(vertex):
            ghost = self.ghost_table.local_ghost(vertex)
            self.counters.previsits += 1
            if not visitor.pre_visit(ghost):
                self.ghost_table.filter_hits += 1
                self.counters.ghost_filtered += 1
                return
            self.ghost_table.filter_passes += 1
        self.mailbox.send(master, KIND_VISITOR, visitor, self.algorithm.visitor_bytes)

    def check_mailbox(self, visitors: list[Visitor]) -> None:
        """Algorithm 1, CHECK_MAILBOX: pre-visit arrivals, queue locally,
        forward along the replica chain."""
        for visitor in visitors:
            vertex = visitor.vertex
            self.counters.previsits += 1
            if visitor.pre_visit(self.state_of(vertex)):
                self._enqueue_local(visitor)
                if self.rank < self.graph.max_owner(vertex):
                    # forwards to next replica
                    self.mailbox.send(
                        self.rank + 1, KIND_VISITOR, visitor, self.algorithm.visitor_bytes
                    )

    def _enqueue_local(self, visitor: Visitor) -> None:
        self._seq += 1
        tie = visitor.vertex if self.locality_ordering else self._seq
        heapq.heappush(self._heap, (visitor.priority, tie, self._seq, visitor))

    def process(self, budget: int) -> int:
        """Run up to ``budget`` queued visitors; returns how many ran."""
        executed = 0
        heap = self._heap
        probe = self.order_probe
        while heap and executed < budget:
            _, _, _, visitor = heapq.heappop(heap)
            self.counters.visits += 1
            if probe is not None:
                probe.append(visitor.vertex)
            visitor.visit(self)
            executed += 1
        return executed

    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Checkpointable rank state for crash recovery.

        State objects are mutable (``pre_visit``/``visit`` write them) and
        are deep-copied; heap entries and the visitor objects inside them
        are never mutated after construction, so the heap is a shallow
        container copy sharing the visitors.
        """
        snap = {
            "states": copy.deepcopy(self.states),
            "heap": list(self._heap),
            "seq": self._seq,
            "counters": copy.copy(self.counters),
        }
        if self.ghost_table is not None:
            snap["ghosts"] = self.ghost_table.snapshot_state()
        return snap

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` checkpoint (the snapshot
        itself stays pristine so a later crash can restore it again)."""
        self.states = copy.deepcopy(snap["states"])
        self._heap = list(snap["heap"])
        self._seq = snap["seq"]
        self.counters = copy.copy(snap["counters"])
        if self.ghost_table is not None:
            self.ghost_table.restore_state(snap["ghosts"])

    # ------------------------------------------------------------------ #
    def locally_quiet(self) -> bool:
        """True when this rank's local visitor queue is empty (envelopes in
        flight are covered by the send/receive counts)."""
        return not self._heap

    def queue_length(self) -> int:
        return len(self._heap)

    def sync_spill(self, pager, resident_limit: int) -> None:
        """Reconcile the external-memory queue overflow with the current
        queue depth (the paper's §V-A external queue, at tick granularity).

        Entries beyond ``resident_limit`` live in the spill log: growth
        since the last call is written out, shrinkage read back in, both
        charged through ``pager``.  Pure cost accounting — pop order and
        visitor execution are untouched, so results stay bit-identical.
        """
        entry_bytes = self.algorithm.visitor_bytes + QUEUE_ENTRY_OVERHEAD_BYTES
        target = max(0, self.queue_length() - resident_limit)
        cur = self._spilled_visitors
        if target > cur:
            pager.spill(NS_QUEUE, (target - cur) * entry_bytes)
            self.counters.queue_spilled += target - cur
        elif target < cur:
            pager.unspill(NS_QUEUE, (cur - target) * entry_bytes)
            self.counters.queue_unspilled += cur - target
        self._spilled_visitors = target

    @property
    def spill_ledger(self) -> int:
        """The spill ledger, exposed for worker-supervision images (see
        the batch path's note): restored together with the pager snapshot
        on respawn, deliberately outside :meth:`snapshot_state`."""
        return self._spilled_visitors

    @spill_ledger.setter
    def spill_ledger(self, value: int) -> None:
        self._spilled_visitors = value

    def sync_mailbox_counters(self) -> None:
        """Mirror mailbox counters into this rank's trace counters."""
        c = self.counters
        mb = self.mailbox
        c.visitors_sent = mb.visitors_sent
        c.visitors_received = mb.visitors_received
        c.packets_sent = mb.packets_sent
        c.bytes_sent = mb.bytes_sent
        c.envelopes_forwarded = mb.envelopes_forwarded
        c.bp_stalls = mb.bp_stalls
        c.bp_spilled_bytes = mb.bp_spilled_bytes


_EMPTY = np.empty(0, dtype=np.int64)
