"""The visitor abstraction (Section IV-A, Table I).

A traversal algorithm supplies a *visitor* type with:

``pre_visit(vertex_data)``
    Preliminary evaluation against the target vertex's state; returns
    ``True`` if the visit should proceed.  May be applied to *ghost*
    state, to master state on delivery, and to replica state along the
    forwarding chain — it must therefore be a pure function of the visitor
    and the state object it is handed.

``visit(ctx)``
    The main visitor procedure.  ``ctx`` is the executing rank's
    :class:`~repro.core.visitor_queue.VisitorQueueRank`, which exposes the
    graph operations (``out_edges``, ``state_of``, ``has_local_edge``) and
    ``push`` for dynamically created visitors.  (The paper writes
    ``visit(graph, visitor_queue)``; here both capabilities live on one
    context object.)

``priority``
    The ``operator<`` of Table I: visitors are ordered in a local min-heap
    by this integer.  Ties are broken by vertex id when the engine's
    locality ordering is enabled (Section V-A) — "to improve page-level
    locality, we order visitors by their vertex identifier when the
    algorithm does not define an order".

An :class:`AsyncAlgorithm` packages the visitor with everything the engine
needs: per-vertex state construction (master / replica / ghost roles),
initial visitor seeding, ghost-usage declaration ("each algorithm must
explicitly declare ghost usage") and result gathering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.batch import BatchStateArrays, VisitorBatch
    from repro.core.visitor_queue import VisitorQueueRank
    from repro.graph.distributed import DistributedGraph

#: State roles.  ``MASTER`` is the authoritative copy on ``min_owner``;
#: ``REPLICA`` copies live along the forwarding chain; ``GHOST`` copies are
#: the local, never-synchronised filters of Section IV-B.
ROLE_MASTER = "master"
ROLE_REPLICA = "replica"
ROLE_GHOST = "ghost"


class Visitor:
    """Base visitor: accept-everything semantics, priority 0.

    Subclasses use ``__slots__`` and plain attributes; visitors are sent by
    value through the simulated network, exactly like the paper's POD
    visitor structs travel through MPI.
    """

    __slots__ = ("vertex",)

    #: Heap priority (the ``operator<`` of Table I). Class attribute so
    #: visitors without ordering pay no per-instance storage.
    priority = 0

    def __init__(self, vertex: int) -> None:
        self.vertex = vertex

    def pre_visit(self, vertex_data) -> bool:
        """Default: always proceed."""
        return True

    def visit(self, ctx: "VisitorQueueRank") -> None:
        """Default: do nothing."""


class AsyncAlgorithm(ABC):
    """Descriptor binding a visitor type into a runnable traversal."""

    #: Human-readable algorithm name (reports, stats).
    name: str = "abstract"
    #: Whether ghosts may filter this algorithm's visitors.  Only safe for
    #: algorithms whose pre_visit is a monotonic filter (BFS, CC); counting
    #: algorithms (k-core, triangle counting) must leave this False.
    uses_ghosts: bool = False
    #: Serialized visitor size for the byte-cost model.
    visitor_bytes: int = 16
    #: Whether the algorithm implements the vectorized batch fast path
    #: (``EngineConfig.batch``).  Requires flat numeric state and the
    #: ``*_batch`` hooks below; all built-in algorithms (monotonic
    #: traversals *and* the counting/accumulating ones) implement it.
    #: Arbitrary user visitors stay on the object path.
    supports_batch: bool = False
    #: Dtype of the batch payload array (BFS length, SSSP distance, CC
    #: label, triangle ``second``, PageRank residual amount).
    payload_dtype = np.float64
    #: Dtypes of additional per-visitor batch columns
    #: (:attr:`VisitorBatch.extras`); triangle counting declares one
    #: ``int64`` column for ``third``.
    batch_extra_dtypes: tuple = ()
    #: True when the heap priority *is* the payload (the monotonic
    #: traversals).  Algorithms with their own ``operator<`` (PageRank's
    #: ``-amount``, triangle counting's constant 0) set this False and
    #: implement :meth:`batch_priorities`.
    batch_priority_is_payload: bool = True

    def bind(self, graph: "DistributedGraph") -> None:
        """Called once by the engine before state construction.

        Default: no-op.  Algorithms that need graph-wide facts to shape
        their per-vertex state (e.g. PageRank gates sole-copy vertices in
        ``pre_visit`` but must stream through split-vertex replica chains)
        capture them here.
        """

    @abstractmethod
    def make_state(self, vertex: int, degree: int, role: str):
        """Create the per-vertex state object for ``vertex``.

        ``role`` is one of :data:`ROLE_MASTER`, :data:`ROLE_REPLICA`,
        :data:`ROLE_GHOST`; algorithms whose replicas behave differently
        from masters (k-core's hair-trigger replicas) dispatch on it.
        """

    @abstractmethod
    def initial_visitors(self, graph: "DistributedGraph", rank: int) -> Iterable[Visitor]:
        """Visitors rank ``rank`` pushes before the traversal starts."""

    @abstractmethod
    def finalize(self, graph: "DistributedGraph", states_per_rank: list[list]):
        """Gather per-rank state lists into the algorithm's result object.

        ``states_per_rank[r][v - state_lo_r]`` is rank ``r``'s state copy
        for vertex ``v``.  Master copies are authoritative; algorithms that
        accumulate wherever the data lives (triangle counting) sum across
        all copies instead.
        """

    # ------------------------------------------------------------------ #
    # Batch fast path (``supports_batch = True`` implementations only).
    # Semantics contract: each hook must be the exact vectorization of the
    # object-path code — ``make_state_arrays`` of N ``make_state`` calls,
    # ``expand_batch`` of the visitor's ``visit`` expansion loop — so that
    # the two paths produce bit-identical states and traversal stats.
    # ------------------------------------------------------------------ #
    def make_state_arrays(
        self,
        vertices: np.ndarray,
        degrees: np.ndarray,
        role: str,
        *,
        masters: np.ndarray | None = None,
    ) -> "BatchStateArrays":
        """Array-backed state block for ``vertices`` (batch path).

        ``role`` is a single role for the whole block (:data:`ROLE_GHOST`
        for ghost tables, :data:`ROLE_MASTER` otherwise).  ``masters`` —
        supplied for rank state blocks, ``None`` for ghost tables — marks
        which rows are master copies, for algorithms whose replicas
        initialise differently (k-core's hair-trigger replicas); the
        monotonic traversals ignore it.
        """
        raise NotImplementedError(f"{self.name} does not support the batch path")

    def batch_priorities(self, payloads: np.ndarray) -> np.ndarray:
        """Heap priorities for a batch (``operator<`` of Table I),
        aligned with ``payloads``.  Only consulted when
        :attr:`batch_priority_is_payload` is False."""
        raise NotImplementedError(f"{self.name} does not define batch priorities")

    def initial_batch(self, graph: "DistributedGraph", rank: int) -> "VisitorBatch | None":
        """Batch twin of :meth:`initial_visitors` (same visitors, same order)."""
        raise NotImplementedError(f"{self.name} does not support the batch path")

    def expand_batch(
        self,
        vertices: np.ndarray,
        payloads: np.ndarray,
        lens: np.ndarray,
        targets: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Vectorized ``visit`` expansion for a run of executing visitors.

        ``targets`` is the concatenation of the adjacency rows of
        ``vertices`` (row ``i`` contributing ``lens[i]`` entries); returns
        ``(payloads, parents)`` arrays aligned with ``targets`` — exactly
        the visitors the object path would ``push``, in push order.
        """
        raise NotImplementedError(f"{self.name} does not support the batch path")

    def execute_batch(self, ctx, batch: "VisitorBatch") -> "VisitorBatch | None":
        """Vectorized ``visit`` over one popped run; returns the push batch.

        ``ctx`` is the executing
        :class:`~repro.core.batch_queue.BatchVisitorQueueRank` (the batch
        twin of the visit context): it exposes the local CSR
        (``ctx.csr``), state block (``ctx.states``), counters, and the
        bulk page-metering helpers.  The default implementation is the
        monotonic-traversal visit — the Alg. 2 line 13 still-the-best
        gate, then :meth:`expand_batch` over the live rows — and must
        mirror the object path's metering exactly: per popped visitor, a
        state page (the gate read), then its row pages only when live.

        Counting/accumulating algorithms override this entirely (k-core's
        unconditional expansion, triangle counting's three-phase visit,
        PageRank's drain-and-push); the caller centrally counts pushes and
        applies the ghost filter to whatever batch is returned.
        """
        from repro.core.batch import VisitorBatch

        vertices, payloads = batch.vertices, batch.payloads
        live = payloads == ctx.states.values[vertices - ctx.state_lo]
        ctx.meter_gate_pages(vertices, live)
        if not live.any():
            return None
        live_v = vertices[live]
        lens, targets = ctx.adjacency_batch(live_v)
        ctx.counters.edges_scanned += int(lens.sum())
        if targets.size == 0:
            return None
        out_payloads, out_parents = self.expand_batch(
            live_v, payloads[live], lens, targets
        )
        return VisitorBatch(targets, out_payloads, out_parents)

    def finalize_batch(self, graph: "DistributedGraph", arrays_per_rank: list):
        """Batch twin of :meth:`finalize` over per-rank
        :class:`~repro.core.batch.BatchStateArrays`."""
        raise NotImplementedError(f"{self.name} does not support the batch path")

    # ------------------------------------------------------------------ #
    def master_states(self, graph: "DistributedGraph", states_per_rank: list[list]):
        """Iterate ``(vertex, master_state)`` over all vertices."""
        for rank, states in enumerate(states_per_rank):
            part = graph.partitions[rank]
            for v in graph.masters_on(rank):
                yield int(v), states[int(v) - part.state_lo]
