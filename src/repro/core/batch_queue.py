"""Vectorized per-rank visitor queue — the batch twin of
:class:`~repro.core.visitor_queue.VisitorQueueRank`.

Executes exactly Algorithm 1, but frontier-at-a-time: arrivals are
:class:`~repro.core.batch.VisitorBatch` objects whose pre-visit is one
masked compare-and-update, ``visit`` expansion gathers all executing rows'
adjacency in one indexed read and pushes one batch envelope per
destination run, and page metering for NVRAM machines goes through
:meth:`PageCache.access_pages` in bulk.

Equivalence with the object path (the determinism guarantee of
INTERNALS §6/§7) rests on three ordering facts:

* **Pre-visit** uses the state block's ``previsit_batch``, which resolves
  within-batch races on the same vertex sequentially (monotonic
  improve-or-drop for the traversals, exact arrival-ordered counter
  updates for k-core/triangles/PageRank), and local heap keys are the
  identical ``(priority, tie, seq)`` triples, so queue contents and pop
  order match visitor-for-visitor.
* **Send order**: adjacency rows are expanded in pop order and row targets
  are destination-monotone (owners are contiguous vertex ranges), so
  splitting the concatenated push stream at destination changes yields
  per-hop envelope streams identical to per-visitor ``push`` calls; the
  mailbox then splits batches at aggregation boundaries so every packet
  carries the same visitors as the object path's.
* **Page order**: per executing visitor, state pages then row pages are
  metered in pop order — the same page-id sequence ``state_of`` /
  ``out_edges`` would touch — so cache hits, misses and LRU state match.
"""

from __future__ import annotations

import copy
import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.comm.mailbox import Mailbox
from repro.core.batch import GhostArrayTable, VisitorBatch, concat_ranges
from repro.core.visitor import ROLE_MASTER
from repro.memory.page_cache import NAMESPACE_SHIFT
from repro.memory.spill import NS_QUEUE, QUEUE_ENTRY_OVERHEAD_BYTES
from repro.runtime.trace import RankCounters
from repro.types import VID_DTYPE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.visitor import AsyncAlgorithm
    from repro.graph.distributed import DistributedGraph
    from repro.memory.backing import PagedCSR


class BatchVisitorQueueRank:
    """One rank's slice of the visitor queue, on the vectorized fast path."""

    _STATE_NAMESPACE = 2  # page-cache namespace for vertex state

    def __init__(
        self,
        rank: int,
        graph: "DistributedGraph",
        algorithm: "AsyncAlgorithm",
        mailbox: Mailbox,
        *,
        ghost_table: GhostArrayTable | None = None,
        paged_csr: "PagedCSR | None" = None,
        locality_ordering: bool = True,
        state_pager=None,
    ) -> None:
        self.rank = rank
        self.graph = graph
        self.algorithm = algorithm
        self.mailbox = mailbox
        self.ghost_table = ghost_table
        self.paged_csr = paged_csr
        self.locality_ordering = locality_ordering
        self.state_pager = state_pager
        self.counters = RankCounters()

        part = graph.partitions[rank]
        self.state_lo = part.state_lo
        #: This rank's in-memory CSR slice (``execute_batch`` hooks read it
        #: directly; the paged view is metering-only).
        self.csr = part.csr
        self._min_owners = graph.min_owners
        self._max_owners = graph.max_owners
        self._prio_is_payload = algorithm.batch_priority_is_payload
        vertices = np.arange(part.state_lo, part.state_hi + 1, dtype=VID_DTYPE)
        #: Array-backed state block (the batch twin of ``.states`` lists).
        self.states = algorithm.make_state_arrays(
            vertices,
            graph.global_out_degrees[vertices],
            ROLE_MASTER,
            masters=graph.min_owners[vertices] == rank,
        )
        self._heap: list[tuple] = []
        self._seq = 0
        #: queue entries currently living in the external spill log
        #: (tick-granularity ledger; see :meth:`sync_spill`).  Deliberately
        #: outside snapshot/restore — see the object path's note.
        # repro-lint: volatile -- ledger tracks the pager, which is not rolled back on restore
        self._spilled_visitors = 0
        #: race-detector tap (see the object path) — engine-owned, drained
        #: every tick, hence outside snapshot/restore.
        # repro-lint: volatile -- engine-owned observability tap, drained every tick
        self.order_probe: list[int] | None = None

    @property
    def num_local_states(self) -> int:
        return len(self.states)

    # ------------------------------------------------------------------ #
    # Algorithm 1, batched
    # ------------------------------------------------------------------ #
    def push_batch(self, batch: VisitorBatch) -> None:
        """Algorithm 1, PUSH over a batch: ghost filter, then one batch
        envelope per destination run toward the masters."""
        n = len(batch)
        if n == 0:
            return
        self.counters.pushes += n
        if self.ghost_table is not None:
            keep, previsits, filtered = self.ghost_table.filter(
                batch.vertices, batch.payloads
            )
            self.counters.previsits += previsits
            self.counters.ghost_filtered += filtered
            if filtered:
                batch = batch.take(keep)
        self._send_runs(batch)

    def check_mailbox(self, batches: list[VisitorBatch]) -> None:
        """Algorithm 1, CHECK_MAILBOX: batched pre-visit of the arrivals,
        local enqueue of the winners, replica-chain forward."""
        batch = batches[0] if len(batches) == 1 else VisitorBatch.concat(batches)
        n = len(batch)
        if n == 0:
            return
        self.counters.previsits += n
        if self.state_pager is not None:
            self._meter_state_pages(batch.vertices)
        mask = self.states.previsit_batch(batch.vertices - self.state_lo, batch)
        if not mask.any():
            return
        passed = batch.take(mask) if not mask.all() else batch
        self._enqueue_local(passed)
        fwd = self.rank < self._max_owners[passed.vertices]
        if fwd.any():
            self.mailbox.send_batch(
                self.rank + 1,
                passed.take(fwd) if not fwd.all() else passed,
                self.algorithm.visitor_bytes,
            )

    def _enqueue_local(self, passed: VisitorBatch) -> None:
        # Identical heap keys to the object path: (priority, tie, seq).
        # Monotonic traversals (priority == payload) store
        # ``(payload, tie, seq, vertex, parent)``; own-priority algorithms
        # store ``(priority, tie, seq, vertex, payload, *extras)`` —
        # comparisons never reach past ``seq`` (it is unique), so pop
        # order is the object path's regardless of the tail layout.
        heap = self._heap
        seq = self._seq
        loc = self.locality_ordering
        vs = passed.vertices.tolist()
        ps = passed.payloads.tolist()
        if self._prio_is_payload:
            prs = passed.parents.tolist() if passed.parents is not None else None
            if prs is None:
                for v, p in zip(vs, ps, strict=False):
                    seq += 1
                    heapq.heappush(heap, (p, v if loc else seq, seq, v, 0))
            else:
                for v, p, pr in zip(vs, ps, prs, strict=False):
                    seq += 1
                    heapq.heappush(heap, (p, v if loc else seq, seq, v, pr))
        else:
            ks = self.algorithm.batch_priorities(passed.payloads).tolist()
            if not passed.extras:
                for v, p, k in zip(vs, ps, ks, strict=False):
                    seq += 1
                    heapq.heappush(heap, (k, v if loc else seq, seq, v, p))
            elif len(passed.extras) == 1:
                es = passed.extras[0].tolist()
                for v, p, k, e in zip(vs, ps, ks, es, strict=False):
                    seq += 1
                    heapq.heappush(heap, (k, v if loc else seq, seq, v, p, e))
            else:
                cols = [e.tolist() for e in passed.extras]
                for i, (v, p, k) in enumerate(zip(vs, ps, ks, strict=False)):
                    seq += 1
                    heapq.heappush(
                        heap,
                        (k, v if loc else seq, seq, v, p, *(c[i] for c in cols)),
                    )
        self._seq = seq

    def process(self, budget: int) -> int:
        """Pop up to ``budget`` visitors and run their (vectorized) visits."""
        heap = self._heap
        if not heap:
            return 0
        pop = heapq.heappop
        algo = self.algorithm
        prio_is_payload = self._prio_is_payload
        n_extra = len(algo.batch_extra_dtypes)
        vs: list = []
        ps: list = []
        extra_cols: list[list] = [[] for _ in range(n_extra)]
        executed = 0
        while heap and executed < budget:
            entry = pop(heap)
            vs.append(entry[3])
            ps.append(entry[0] if prio_is_payload else entry[4])
            for j in range(n_extra):
                extra_cols[j].append(entry[5 + j])
            executed += 1
        self.counters.visits += executed
        if self.order_probe is not None:
            self.order_probe.extend(vs)
        batch = VisitorBatch(
            np.array(vs, dtype=VID_DTYPE),
            np.array(ps, dtype=algo.payload_dtype),
            None,
            tuple(
                np.array(col, dtype=dt)
                for col, dt in zip(extra_cols, algo.batch_extra_dtypes, strict=False)
            ),
        )
        out = algo.execute_batch(self, batch)
        if out is None or len(out) == 0:
            return executed
        self.counters.pushes += len(out)
        if self.ghost_table is not None:
            keep, previsits, filtered = self.ghost_table.filter(
                out.vertices, out.payloads
            )
            self.counters.previsits += previsits
            self.counters.ghost_filtered += filtered
            if filtered:
                out = out.take(keep)
        self._send_runs(out)
        return executed

    # ------------------------------------------------------------------ #
    def _send_runs(self, batch: VisitorBatch) -> None:
        """Hand the whole expansion stream to the mailbox, which groups it
        by next hop (stably, so per-hop message order — the only order
        packet composition and arrival order depend on — is exactly the
        object path's per-visitor push order)."""
        if len(batch) == 0:
            return
        self.mailbox.send_stream(
            self._min_owners[batch.vertices],
            batch,
            self.algorithm.visitor_bytes,
        )

    # ------------------------------------------------------------------ #
    # Bulk helpers for ``execute_batch`` hooks
    # ------------------------------------------------------------------ #
    def adjacency_batch(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(lens, targets)`` of the local adjacency rows of ``vertices``:
        ``targets`` concatenates the rows in order (row ``i`` contributing
        ``lens[i]`` entries) — the bulk twin of N ``out_edges`` calls."""
        csr = self.csr
        r = vertices - csr.vertex_base
        row_lo = csr.row_ptr[r]
        lens = csr.row_ptr[r + 1] - row_lo
        return lens, csr.cols[concat_ranges(row_lo, lens)]

    # ------------------------------------------------------------------ #
    # Page metering (NVRAM machines)
    # ------------------------------------------------------------------ #
    def _meter_state_pages(self, vertices: np.ndarray) -> None:
        """Fully-external mode: charge the state-page touches that
        ``state_of`` would make, one per arrival, in arrival order."""
        cache, state_bytes = self.state_pager
        byte_lo = (vertices - self.state_lo) * state_bytes
        first = byte_lo // cache.page_size
        lengths = (byte_lo + state_bytes - 1) // cache.page_size - first + 1
        base = self._STATE_NAMESPACE << NAMESPACE_SHIFT
        cache.access_pages(concat_ranges(first + base, lengths))

    def meter_gate_pages(self, vertices: np.ndarray, live: np.ndarray) -> None:
        """Meter the pages of one popped run, in the object path's order:
        per visitor, its state pages (the ``state_of`` gate read), then —
        only where ``live`` — its adjacency row's pages (``out_edges``).
        No-op on in-memory machines."""
        if self.paged_csr is None and self.state_pager is None:
            return
        nv = vertices.size
        starts = np.zeros((nv, 3), dtype=np.int64)
        lengths = np.zeros((nv, 3), dtype=np.int64)
        cache = None
        if self.state_pager is not None:
            cache, state_bytes = self.state_pager
            byte_lo = (vertices - self.state_lo) * state_bytes
            first = byte_lo // cache.page_size
            starts[:, 0] = first + (self._STATE_NAMESPACE << NAMESPACE_SHIFT)
            lengths[:, 0] = (
                (byte_lo + state_bytes - 1) // cache.page_size - first + 1
            )
        if self.paged_csr is not None and live.any():
            row_starts, row_lengths = self.paged_csr.row_page_segments(vertices[live])
            starts[live, 1:] = row_starts
            lengths[live, 1:] = row_lengths
            cache = self.paged_csr.cache
        if cache is not None:
            cache.access_pages(concat_ranges(starts.ravel(), lengths.ravel()))

    def meter_row_pages(self, vertices: np.ndarray) -> None:
        """Meter only adjacency-row pages, one visitor at a time in pop
        order — the k-core visit, which expands unconditionally and never
        reads vertex state."""
        if self.paged_csr is None or vertices.size == 0:
            return
        starts, lengths = self.paged_csr.row_page_segments(vertices)
        self.paged_csr.cache.access_pages(
            concat_ranges(starts.ravel(), lengths.ravel())
        )

    def meter_closing_pages(self, vertices: np.ndarray, state_hit: np.ndarray) -> None:
        """Meter a triangle-counting popped run: every visitor touches its
        adjacency row (expansion scan or ``has_local_edge`` closing probe),
        and closing visitors that *found* the edge then touch their state
        page (the counter increment) — rows before state, per visitor, in
        pop order, exactly as the object path's visit."""
        if self.paged_csr is None and self.state_pager is None:
            return
        nv = vertices.size
        starts = np.zeros((nv, 3), dtype=np.int64)
        lengths = np.zeros((nv, 3), dtype=np.int64)
        cache = None
        if self.paged_csr is not None:
            row_starts, row_lengths = self.paged_csr.row_page_segments(vertices)
            starts[:, :2] = row_starts
            lengths[:, :2] = row_lengths
            cache = self.paged_csr.cache
        if self.state_pager is not None and state_hit.any():
            state_cache, state_bytes = self.state_pager
            hit_v = vertices[state_hit]
            byte_lo = (hit_v - self.state_lo) * state_bytes
            first = byte_lo // state_cache.page_size
            starts[state_hit, 2] = first + (self._STATE_NAMESPACE << NAMESPACE_SHIFT)
            lengths[state_hit, 2] = (
                (byte_lo + state_bytes - 1) // state_cache.page_size - first + 1
            )
            cache = state_cache
        if cache is not None:
            cache.access_pages(concat_ranges(starts.ravel(), lengths.ravel()))

    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Checkpointable rank state for crash recovery (array copies via
        the state block's ``snapshot``; heap tuples are immutable and
        shared)."""
        snap = {
            "arrays": self.states.snapshot(),
            "heap": list(self._heap),
            "seq": self._seq,
            "counters": copy.copy(self.counters),
        }
        if self.ghost_table is not None:
            snap["ghosts"] = self.ghost_table.snapshot_state()
        return snap

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` checkpoint in place."""
        self.states.restore(snap["arrays"])
        self._heap = list(snap["heap"])
        self._seq = snap["seq"]
        self.counters = copy.copy(snap["counters"])
        if self.ghost_table is not None:
            self.ghost_table.restore_state(snap["ghosts"])

    # ------------------------------------------------------------------ #
    def locally_quiet(self) -> bool:
        """True when this rank's local visitor queue is empty."""
        return not self._heap

    def queue_length(self) -> int:
        return len(self._heap)

    def sync_spill(self, pager, resident_limit: int) -> None:
        """Reconcile the external-memory queue overflow with the current
        queue depth — identical ledger arithmetic to the object path's
        :meth:`~repro.core.visitor_queue.VisitorQueueRank.sync_spill`, so
        spill I/O and counters match byte-for-byte across the two paths.
        """
        entry_bytes = self.algorithm.visitor_bytes + QUEUE_ENTRY_OVERHEAD_BYTES
        target = max(0, self.queue_length() - resident_limit)
        cur = self._spilled_visitors
        if target > cur:
            pager.spill(NS_QUEUE, (target - cur) * entry_bytes)
            self.counters.queue_spilled += target - cur
        elif target < cur:
            pager.unspill(NS_QUEUE, (cur - target) * entry_bytes)
            self.counters.queue_unspilled += cur - target
        self._spilled_visitors = target

    @property
    def spill_ledger(self) -> int:
        """The spill ledger, exposed for worker-supervision images: a
        respawned worker adopts the failed one's ledger alongside the
        pager snapshot, so the pair stays reconciled (the ledger is
        deliberately outside :meth:`snapshot_state` — see its note)."""
        return self._spilled_visitors

    @spill_ledger.setter
    def spill_ledger(self, value: int) -> None:
        self._spilled_visitors = value

    def sync_mailbox_counters(self) -> None:
        """Mirror mailbox counters into this rank's trace counters."""
        c = self.counters
        mb = self.mailbox
        c.visitors_sent = mb.visitors_sent
        c.visitors_received = mb.visitors_received
        c.packets_sent = mb.packets_sent
        c.bytes_sent = mb.bytes_sent
        c.envelopes_forwarded = mb.envelopes_forwarded
        c.bp_stalls = mb.bp_stalls
        c.bp_spilled_bytes = mb.bp_spilled_bytes
