"""Vectorized per-rank visitor queue — the batch twin of
:class:`~repro.core.visitor_queue.VisitorQueueRank`.

Executes exactly Algorithm 1, but frontier-at-a-time: arrivals are
:class:`~repro.core.batch.VisitorBatch` objects whose pre-visit is one
masked compare-and-update, ``visit`` expansion gathers all executing rows'
adjacency in one indexed read and pushes one batch envelope per
destination run, and page metering for NVRAM machines goes through
:meth:`PageCache.access_pages` in bulk.

Equivalence with the object path (the determinism guarantee of
INTERNALS §6/§7) rests on three ordering facts:

* **Pre-visit** uses :meth:`BatchStateArrays.previsit`, which resolves
  within-batch races on the same vertex sequentially, and local heap keys
  are the identical ``(priority, tie, seq)`` triples, so queue contents
  and pop order match visitor-for-visitor.
* **Send order**: adjacency rows are expanded in pop order and row targets
  are destination-monotone (owners are contiguous vertex ranges), so
  splitting the concatenated push stream at destination changes yields
  per-hop envelope streams identical to per-visitor ``push`` calls; the
  mailbox then splits batches at aggregation boundaries so every packet
  carries the same visitors as the object path's.
* **Page order**: per executing visitor, state pages then row pages are
  metered in pop order — the same page-id sequence ``state_of`` /
  ``out_edges`` would touch — so cache hits, misses and LRU state match.
"""

from __future__ import annotations

import copy
import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.comm.mailbox import Mailbox
from repro.core.batch import GhostArrayTable, VisitorBatch, concat_ranges
from repro.core.visitor import ROLE_MASTER
from repro.memory.page_cache import NAMESPACE_SHIFT
from repro.memory.spill import NS_QUEUE, QUEUE_ENTRY_OVERHEAD_BYTES
from repro.runtime.trace import RankCounters
from repro.types import VID_DTYPE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.visitor import AsyncAlgorithm
    from repro.graph.distributed import DistributedGraph
    from repro.memory.backing import PagedCSR


class BatchVisitorQueueRank:
    """One rank's slice of the visitor queue, on the vectorized fast path."""

    _STATE_NAMESPACE = 2  # page-cache namespace for vertex state

    def __init__(
        self,
        rank: int,
        graph: "DistributedGraph",
        algorithm: "AsyncAlgorithm",
        mailbox: Mailbox,
        *,
        ghost_table: GhostArrayTable | None = None,
        paged_csr: "PagedCSR | None" = None,
        locality_ordering: bool = True,
        state_pager=None,
    ) -> None:
        self.rank = rank
        self.graph = graph
        self.algorithm = algorithm
        self.mailbox = mailbox
        self.ghost_table = ghost_table
        self.paged_csr = paged_csr
        self.locality_ordering = locality_ordering
        self.state_pager = state_pager
        self.counters = RankCounters()

        part = graph.partitions[rank]
        self.state_lo = part.state_lo
        self._csr = part.csr
        self._min_owners = graph.min_owners
        self._max_owners = graph.max_owners
        vertices = np.arange(part.state_lo, part.state_hi + 1, dtype=VID_DTYPE)
        #: Array-backed state block (the batch twin of ``.states`` lists).
        self.states = algorithm.make_state_arrays(
            vertices, graph.global_out_degrees[vertices], ROLE_MASTER
        )
        self._heap: list[tuple] = []
        self._seq = 0
        #: queue entries currently living in the external spill log
        #: (tick-granularity ledger; see :meth:`sync_spill`).  Deliberately
        #: outside snapshot/restore — see the object path's note.
        # repro-lint: volatile -- ledger tracks the pager, which is not rolled back on restore
        self._spilled_visitors = 0
        #: race-detector tap (see the object path) — engine-owned, drained
        #: every tick, hence outside snapshot/restore.
        # repro-lint: volatile -- engine-owned observability tap, drained every tick
        self.order_probe: list[int] | None = None

    @property
    def num_local_states(self) -> int:
        return len(self.states)

    # ------------------------------------------------------------------ #
    # Algorithm 1, batched
    # ------------------------------------------------------------------ #
    def push_batch(self, batch: VisitorBatch) -> None:
        """Algorithm 1, PUSH over a batch: ghost filter, then one batch
        envelope per destination run toward the masters."""
        n = len(batch)
        if n == 0:
            return
        self.counters.pushes += n
        targets, payloads, parents = batch.vertices, batch.payloads, batch.parents
        if self.ghost_table is not None:
            keep, previsits, filtered = self.ghost_table.filter(targets, payloads)
            self.counters.previsits += previsits
            self.counters.ghost_filtered += filtered
            if filtered:
                targets = targets[keep]
                payloads = payloads[keep]
                if parents is not None:
                    parents = parents[keep]
        self._send_runs(targets, payloads, parents)

    def check_mailbox(self, batches: list[VisitorBatch]) -> None:
        """Algorithm 1, CHECK_MAILBOX: batched pre-visit of the arrivals,
        local enqueue of the winners, replica-chain forward."""
        batch = batches[0] if len(batches) == 1 else VisitorBatch.concat(batches)
        n = len(batch)
        if n == 0:
            return
        self.counters.previsits += n
        if self.state_pager is not None:
            self._meter_state_pages(batch.vertices)
        mask = self.states.previsit(
            batch.vertices - self.state_lo, batch.payloads, batch.parents
        )
        if not mask.any():
            return
        passed = batch.take(mask) if not mask.all() else batch
        self._enqueue_local(passed)
        fwd = self.rank < self._max_owners[passed.vertices]
        if fwd.any():
            self.mailbox.send_batch(
                self.rank + 1,
                passed.take(fwd) if not fwd.all() else passed,
                self.algorithm.visitor_bytes,
            )

    def _enqueue_local(self, passed: VisitorBatch) -> None:
        # Identical heap keys to the object path: (priority, tie, seq),
        # with the payload standing in for priority and vertex/parent
        # riding along in place of the visitor object.
        heap = self._heap
        seq = self._seq
        loc = self.locality_ordering
        vs = passed.vertices.tolist()
        ps = passed.payloads.tolist()
        prs = passed.parents.tolist() if passed.parents is not None else None
        if prs is None:
            for v, p in zip(vs, ps):
                seq += 1
                heapq.heappush(heap, (p, v if loc else seq, seq, v, 0))
        else:
            for v, p, pr in zip(vs, ps, prs):
                seq += 1
                heapq.heappush(heap, (p, v if loc else seq, seq, v, pr))
        self._seq = seq

    def process(self, budget: int) -> int:
        """Pop up to ``budget`` visitors and run their (vectorized) visits."""
        heap = self._heap
        if not heap:
            return 0
        pop = heapq.heappop
        vs: list = []
        ps: list = []
        executed = 0
        while heap and executed < budget:
            entry = pop(heap)
            ps.append(entry[0])
            vs.append(entry[3])
            executed += 1
        self.counters.visits += executed
        if self.order_probe is not None:
            self.order_probe.extend(vs)
        vertices = np.array(vs, dtype=VID_DTYPE)
        payloads = np.array(ps, dtype=self.algorithm.payload_dtype)
        # The Alg. 2 line 13 gate: expand only if the visitor still carries
        # the vertex's best value (vectorized over the popped run).
        live = payloads == self.states.values[vertices - self.state_lo]
        if self.paged_csr is not None or self.state_pager is not None:
            self._meter_process_pages(vertices, live)
        if not live.any():
            return executed
        live_v = vertices[live]
        csr = self._csr
        r = live_v - csr.vertex_base
        row_lo = csr.row_ptr[r]
        lens = csr.row_ptr[r + 1] - row_lo
        total = int(lens.sum())
        self.counters.edges_scanned += total
        if total == 0:
            return executed
        targets = csr.cols[concat_ranges(row_lo, lens)]
        out_payloads, out_parents = self.algorithm.expand_batch(
            live_v, payloads[live], lens, targets
        )
        self.counters.pushes += total
        if self.ghost_table is not None:
            keep, previsits, filtered = self.ghost_table.filter(targets, out_payloads)
            self.counters.previsits += previsits
            self.counters.ghost_filtered += filtered
            if filtered:
                targets = targets[keep]
                out_payloads = out_payloads[keep]
                if out_parents is not None:
                    out_parents = out_parents[keep]
        self._send_runs(targets, out_payloads, out_parents)
        return executed

    # ------------------------------------------------------------------ #
    def _send_runs(
        self,
        targets: np.ndarray,
        payloads: np.ndarray,
        parents: np.ndarray | None,
    ) -> None:
        """Hand the whole expansion stream to the mailbox, which groups it
        by next hop (stably, so per-hop message order — the only order
        packet composition and arrival order depend on — is exactly the
        object path's per-visitor push order)."""
        if targets.size == 0:
            return
        self.mailbox.send_stream(
            self._min_owners[targets],
            VisitorBatch(targets, payloads, parents),
            self.algorithm.visitor_bytes,
        )

    # ------------------------------------------------------------------ #
    # Page metering (NVRAM machines)
    # ------------------------------------------------------------------ #
    def _meter_state_pages(self, vertices: np.ndarray) -> None:
        """Fully-external mode: charge the state-page touches that
        ``state_of`` would make, one per arrival, in arrival order."""
        cache, state_bytes = self.state_pager
        byte_lo = (vertices - self.state_lo) * state_bytes
        first = byte_lo // cache.page_size
        lengths = (byte_lo + state_bytes - 1) // cache.page_size - first + 1
        base = self._STATE_NAMESPACE << NAMESPACE_SHIFT
        cache.access_pages(concat_ranges(first + base, lengths))

    def _meter_process_pages(self, vertices: np.ndarray, live: np.ndarray) -> None:
        """Meter the pages of one popped run, in the object path's order:
        per visitor, its state pages (gate read), then — only when the
        gate passed — its adjacency row's pages."""
        nv = vertices.size
        starts = np.zeros((nv, 3), dtype=np.int64)
        lengths = np.zeros((nv, 3), dtype=np.int64)
        cache = None
        if self.state_pager is not None:
            cache, state_bytes = self.state_pager
            byte_lo = (vertices - self.state_lo) * state_bytes
            first = byte_lo // cache.page_size
            starts[:, 0] = first + (self._STATE_NAMESPACE << NAMESPACE_SHIFT)
            lengths[:, 0] = (
                (byte_lo + state_bytes - 1) // cache.page_size - first + 1
            )
        if self.paged_csr is not None and live.any():
            row_starts, row_lengths = self.paged_csr.row_page_segments(vertices[live])
            starts[live, 1:] = row_starts
            lengths[live, 1:] = row_lengths
            cache = self.paged_csr.cache
        if cache is not None:
            cache.access_pages(concat_ranges(starts.ravel(), lengths.ravel()))

    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Checkpointable rank state for crash recovery (array copies;
        heap tuples are immutable and shared)."""
        snap = {
            "values": self.states.values.copy(),
            "parents": (
                self.states.parents.copy()
                if self.states.parents is not None
                else None
            ),
            "heap": list(self._heap),
            "seq": self._seq,
            "counters": copy.copy(self.counters),
        }
        if self.ghost_table is not None:
            snap["ghosts"] = self.ghost_table.snapshot_state()
        return snap

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` checkpoint in place."""
        self.states.values[:] = snap["values"]
        if self.states.parents is not None and snap["parents"] is not None:
            self.states.parents[:] = snap["parents"]
        self._heap = list(snap["heap"])
        self._seq = snap["seq"]
        self.counters = copy.copy(snap["counters"])
        if self.ghost_table is not None:
            self.ghost_table.restore_state(snap["ghosts"])

    # ------------------------------------------------------------------ #
    def locally_quiet(self) -> bool:
        """True when this rank's local visitor queue is empty."""
        return not self._heap

    def queue_length(self) -> int:
        return len(self._heap)

    def sync_spill(self, pager, resident_limit: int) -> None:
        """Reconcile the external-memory queue overflow with the current
        queue depth — identical ledger arithmetic to the object path's
        :meth:`~repro.core.visitor_queue.VisitorQueueRank.sync_spill`, so
        spill I/O and counters match byte-for-byte across the two paths.
        """
        entry_bytes = self.algorithm.visitor_bytes + QUEUE_ENTRY_OVERHEAD_BYTES
        target = max(0, self.queue_length() - resident_limit)
        cur = self._spilled_visitors
        if target > cur:
            pager.spill(NS_QUEUE, (target - cur) * entry_bytes)
            self.counters.queue_spilled += target - cur
        elif target < cur:
            pager.unspill(NS_QUEUE, (cur - target) * entry_bytes)
            self.counters.queue_unspilled += cur - target
        self._spilled_visitors = target

    def sync_mailbox_counters(self) -> None:
        """Mirror mailbox counters into this rank's trace counters."""
        c = self.counters
        mb = self.mailbox
        c.visitors_sent = mb.visitors_sent
        c.visitors_received = mb.visitors_received
        c.packets_sent = mb.packets_sent
        c.bytes_sent = mb.bytes_sent
        c.envelopes_forwarded = mb.envelopes_forwarded
        c.bp_stalls = mb.bp_stalls
        c.bp_spilled_bytes = mb.bp_spilled_bytes
