"""User-facing traversal entry point.

:func:`run_traversal` wires a :class:`DistributedGraph`, an
:class:`AsyncAlgorithm`, a machine profile and a routing topology into a
:class:`~repro.runtime.engine.SimulationEngine`, runs it to global
quiescence and returns a :class:`TraversalResult` bundling the algorithm's
output with the full simulation trace.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.comm.routing import Topology
from repro.core.visitor import AsyncAlgorithm
from repro.graph.distributed import DistributedGraph
from repro.runtime.costmodel import EngineConfig, MachineModel, laptop
from repro.runtime.engine import SimulationEngine
from repro.runtime.trace import TraversalStats


@dataclass(frozen=True)
class TraversalResult:
    """Output of one asynchronous traversal."""

    #: Algorithm-specific result object (see each algorithm's ``finalize``).
    data: object
    #: Full simulation trace (counts, simulated time, cache behaviour).
    stats: TraversalStats
    #: Host-side barrier IPC telemetry of the parallel executor (frame /
    #: pickled-byte / barrier-wait counters; None at ``workers=1``).
    #: Deliberately outside ``stats``: it varies with the host and the
    #: transport while ``stats`` is bit-identical across both.
    ipc: dict | None = None

    @property
    def time_us(self) -> float:
        """Simulated traversal time in microseconds."""
        return self.stats.time_us


def resolve_config(
    config: EngineConfig | None = None,
    *,
    batch: bool | None = None,
    faults=None,
    reliable: bool | None = None,
    checkpoint_interval: int | None = None,
    mailbox_cap: int | None = None,
    queue_spill: int | None = None,
    storage_faults=None,
    stragglers=None,
    workers: int | None = None,
    ipc: str | None = None,
    worker_faults=None,
    worker_restarts: int | None = None,
    worker_barrier_timeout: float | None = None,
    durable_dir: str | None = None,
    durable_interval: int | None = None,
    durable_keep: int | None = None,
    durable_resume: bool | None = None,
    durable_faults=None,
    kill_at_tick: int | None = None,
    record_digests: bool | None = None,
) -> EngineConfig:
    """Overlay the :func:`run_traversal` convenience overrides onto a base
    :class:`EngineConfig` (shared with :func:`repro.runtime.race.detect_races`
    so both entry points accept the identical keyword surface)."""
    overrides: dict = {}
    if batch is not None:
        overrides["batch"] = batch
    if workers is not None:
        overrides["workers"] = workers
    if ipc is not None:
        overrides["ipc_transport"] = ipc
    if faults is not None:
        overrides["faults"] = faults
    if reliable is not None:
        overrides["reliable"] = reliable
    if checkpoint_interval is not None:
        overrides["checkpoint_interval"] = checkpoint_interval
    if mailbox_cap is not None:
        overrides["mailbox_cap_bytes"] = mailbox_cap
    if queue_spill is not None:
        overrides["queue_spill"] = queue_spill
    if storage_faults is not None:
        overrides["storage_faults"] = storage_faults
    if stragglers is not None:
        overrides["stragglers"] = stragglers
    if worker_faults is not None:
        overrides["worker_faults"] = worker_faults
    if worker_restarts is not None:
        overrides["worker_restarts"] = worker_restarts
    if worker_barrier_timeout is not None:
        overrides["worker_barrier_timeout"] = worker_barrier_timeout
    if durable_dir is not None:
        overrides["durable_dir"] = durable_dir
    if durable_interval is not None:
        overrides["durable_interval"] = durable_interval
    if durable_keep is not None:
        overrides["durable_keep"] = durable_keep
    if durable_resume is not None:
        overrides["durable_resume"] = durable_resume
    if durable_faults is not None:
        overrides["durable_faults"] = durable_faults
    if kill_at_tick is not None:
        overrides["kill_at_tick"] = kill_at_tick
    if record_digests is not None:
        overrides["record_order_digests"] = record_digests
    base = config or EngineConfig()
    return replace(base, **overrides) if overrides else base


def run_traversal(
    graph: DistributedGraph,
    algorithm: AsyncAlgorithm,
    *,
    machine: MachineModel | None = None,
    topology: Topology | str = "direct",
    config: EngineConfig | None = None,
    page_caches: list | None = None,
    batch: bool | None = None,
    faults=None,
    reliable: bool | None = None,
    checkpoint_interval: int | None = None,
    mailbox_cap: int | None = None,
    queue_spill: int | None = None,
    storage_faults=None,
    stragglers=None,
    workers: int | None = None,
    ipc: str | None = None,
    worker_faults=None,
    worker_restarts: int | None = None,
    worker_barrier_timeout: float | None = None,
    durable_dir: str | None = None,
    durable_interval: int | None = None,
    durable_keep: int | None = None,
    durable_resume: bool | None = None,
    durable_faults=None,
    kill_at_tick: int | None = None,
    record_digests: bool | None = None,
) -> TraversalResult:
    """Run ``algorithm`` over ``graph`` on a simulated machine.

    Parameters
    ----------
    graph:
        A :meth:`DistributedGraph.build` result (edge-list or 1D layout).
    algorithm:
        e.g. :class:`repro.algorithms.bfs.BFSAlgorithm`.
    machine:
        Cost profile; defaults to the fast in-memory ``laptop()`` profile.
    topology:
        ``"direct"``, ``"2d"``, ``"3d"`` or a prebuilt
        :class:`~repro.comm.routing.Topology`.
    config:
        Engine knobs (:class:`~repro.runtime.costmodel.EngineConfig`).
    page_caches:
        Optional per-rank :class:`~repro.memory.page_cache.PageCache`
        objects (NVRAM machines only).  Passing the same caches across
        traversals keeps them *warm*, modelling Graph500's repeated BFS
        runs over a persistent user-space page cache.
    batch:
        Override :attr:`EngineConfig.batch` — run the vectorized batch
        fast path (requires ``algorithm.supports_batch``).  Results and
        stats are bit-identical to the object path either way.
    faults:
        Override :attr:`EngineConfig.faults` — a
        :class:`~repro.comm.faults.FaultPlan` (implies reliable delivery).
        Vertex states and logical visit counts stay bit-identical to the
        fault-free run; only simulated time and wire traffic change.
    reliable:
        Override :attr:`EngineConfig.reliable` — run the reliable
        transport without faults (measures the protocol's no-fault tax).
    checkpoint_interval:
        Override :attr:`EngineConfig.checkpoint_interval` (ticks between
        crash-recovery epoch checkpoints).
    mailbox_cap:
        Override :attr:`EngineConfig.mailbox_cap_bytes` — per-destination
        DRAM cap on mailbox aggregation buffers; overflow backpressures
        the producer and spills to external memory.  Cost-only: results
        and logical counters stay bit-identical to the unbounded run.
    queue_spill:
        Override :attr:`EngineConfig.queue_spill` — resident pending-
        visitor limit per rank; overflow pages through the external-memory
        spill log (the paper's §V-A external queue).  Cost-only.
    storage_faults:
        Override :attr:`EngineConfig.storage_faults` — a
        :class:`~repro.memory.faults.StorageFaultPlan` for the simulated
        devices.  Cost-only (plus fault counters).
    stragglers:
        Override :attr:`EngineConfig.stragglers` — a
        :class:`~repro.runtime.pressure.StragglerPlan` of per-rank
        slowdowns.  Cost-only.
    workers:
        Override :attr:`EngineConfig.workers` — worker processes for the
        tick loop (1 = sequential).  Wall-clock only: stats, result
        arrays, wire counters and order digests are bit-identical to the
        sequential schedule at any worker count.
    ipc:
        Override :attr:`EngineConfig.ipc_transport` — ``"ring"``
        (shared-memory SoA packet frames, zero pickled bytes on a
        steady-state batch tick) or ``"pipe"`` (pickled multiprocessing
        pipes).  Wall-clock only; ignored at ``workers=1``.
    worker_faults:
        Override :attr:`EngineConfig.worker_faults` — a
        :class:`~repro.comm.faults.WorkerFaultPlan` injecting *host*
        worker-process failures (SIGKILL, hangs, mid-phase exits, fork
        failures) for the supervision layer to heal.  Requires
        ``workers > 1``; results and all logical stats stay bit-identical
        to the unfailed run (only the ``SUPERVISION_STATS_FIELDS``
        differ).
    worker_restarts:
        Override :attr:`EngineConfig.worker_restarts` — per-worker
        respawn budget; 0 with a fault plan degrades straight to
        parent-side execution.
    worker_barrier_timeout:
        Override :attr:`EngineConfig.worker_barrier_timeout` — wall-clock
        seconds a barrier waits before declaring a worker hung.
    durable_dir:
        Override :attr:`EngineConfig.durable_dir` — directory for durable
        on-disk epoch checkpoints (host-crash recovery).  A killed run
        restarted with ``durable_resume=True`` continues from the latest
        valid epoch with results and stats bit-identical to an
        uninterrupted run.
    durable_interval:
        Override :attr:`EngineConfig.durable_interval` — ticks between
        durable epochs.
    durable_keep:
        Override :attr:`EngineConfig.durable_keep` — retained epoch
        generations (the corruption-fallback ladder depth).
    durable_resume:
        Override :attr:`EngineConfig.durable_resume` — resume from the
        latest valid epoch in ``durable_dir`` instead of starting fresh.
    durable_faults:
        Override :attr:`EngineConfig.durable_faults` — a
        :class:`~repro.runtime.durability.DurableFaultPlan` injecting
        checkpoint-file corruption (torn writes, bit flips, truncated
        manifests, missing sections) for the fallback ladder to absorb.
    kill_at_tick:
        Override :attr:`EngineConfig.kill_at_tick` — SIGKILL this process
        right after the durable epoch at the given tick commits (crash
        harness hook; requires ``durable_dir``).
    record_digests:
        Override :attr:`EngineConfig.record_order_digests` — record
        per-tick visit-order digests (and the whole-run
        ``stats.order_digest``) for bit-identity checks.
    """
    config = resolve_config(
        config,
        batch=batch,
        faults=faults,
        reliable=reliable,
        checkpoint_interval=checkpoint_interval,
        mailbox_cap=mailbox_cap,
        queue_spill=queue_spill,
        storage_faults=storage_faults,
        stragglers=stragglers,
        workers=workers,
        ipc=ipc,
        worker_faults=worker_faults,
        worker_restarts=worker_restarts,
        worker_barrier_timeout=worker_barrier_timeout,
        durable_dir=durable_dir,
        durable_interval=durable_interval,
        durable_keep=durable_keep,
        durable_resume=durable_resume,
        durable_faults=durable_faults,
        kill_at_tick=kill_at_tick,
        record_digests=record_digests,
    )
    engine = SimulationEngine(
        graph,
        algorithm,
        machine or laptop(),
        topology=topology,
        config=config,
        page_caches=page_caches,
    )
    states_per_rank, stats = engine.run()
    if engine.batch_mode:
        data = algorithm.finalize_batch(graph, states_per_rank)
    else:
        data = algorithm.finalize(graph, states_per_rank)
    return TraversalResult(data=data, stats=stats, ipc=engine.ipc_counters)
