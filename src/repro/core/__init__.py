"""The paper's primary contribution: the distributed asynchronous visitor queue.

* :mod:`repro.core.visitor` — the visitor abstraction (Table I): per-vertex
  procedures ``pre_visit`` / ``visit`` plus a priority for the local
  min-heap ordering, and the :class:`AsyncAlgorithm` descriptor that binds
  visitors to state layout, seeding and result gathering.
* :mod:`repro.core.visitor_queue` — the per-rank queue of Algorithm 1:
  ``push`` (with ghost filtering), ``check_mailbox`` (with replica
  forwarding) and the local priority queue.
* :mod:`repro.core.traversal` — the user-facing ``run_traversal`` entry
  point returning a :class:`TraversalResult`.
"""

from repro.core.traversal import TraversalResult, run_traversal
from repro.core.visitor import AsyncAlgorithm, Visitor

__all__ = ["Visitor", "AsyncAlgorithm", "run_traversal", "TraversalResult"]
