"""Struct-of-arrays visitor batches for the vectorized fast path.

The object path moves one heap-allocated :class:`~repro.core.visitor.Visitor`
per logical message and evaluates ``pre_visit`` one method call at a time.
For algorithms whose per-vertex state is flat and numeric, the same
semantics can be executed over whole frontiers at once: a
:class:`VisitorBatch` carries ``vertices`` / ``payloads`` / ``parents``
(plus optional algorithm-specific ``extras`` columns — triangle counting's
``third`` vertex) as parallel numpy arrays, per-vertex state lives in an
array-backed state block, and the pre-visit of N arrivals becomes one
masked array update.

:class:`BatchStateArrays` is the monotonic improve-or-drop state block the
PR-1 traversals (BFS, SSSP, CC) share; counting/accumulating algorithms
(k-core, triangles, PageRank) ship their own state-array classes that
implement the same ``previsit_batch`` / ``snapshot`` / ``restore``
protocol with mutable counter semantics.

Equivalence contract
--------------------
Everything here is *sequentially equivalent* to the object path: applying
``previsit_batch`` to a batch produces exactly the mask and state
mutations that N consecutive ``pre_visit`` calls would, including the
case where several visitors in one batch target the same vertex (the
within-batch order is the arrival order; :func:`occurrence_counts` gives
each position its per-vertex arrival index so duplicate resolution is
exact).  That is what lets the engine's batch mode promise bit-identical
states and :class:`~repro.runtime.trace.TraversalStats` to the object
path.
"""

from __future__ import annotations

import mmap

import numpy as np

from repro.types import VID_DTYPE


class VisitorBatch:
    """A frontier slice: N visitors as parallel arrays (one Python object).

    ``payloads`` is the primary per-visitor scalar; for the monotonic
    traversals it doubles as the heap priority (BFS length, SSSP distance,
    CC label), while algorithms with their own ordering supply
    ``batch_priorities``.  ``parents`` is optional auxiliary state
    (BFS/SSSP parent pointers).  ``extras`` is a tuple of additional
    per-visitor columns for multi-payload visitors (triangle counting
    carries ``second`` in ``payloads`` and ``third`` as an extra); every
    structural operation (take/slice/split/concat) keeps the columns
    aligned, so batch envelopes split at aggregation boundaries carry the
    full visitor record exactly like the object path's POD structs.
    """

    __slots__ = ("vertices", "payloads", "parents", "extras")

    def __init__(
        self,
        vertices: np.ndarray,
        payloads: np.ndarray,
        parents: np.ndarray | None = None,
        extras: tuple = (),
    ) -> None:
        self.vertices = vertices
        self.payloads = payloads
        self.parents = parents
        self.extras = extras

    def __len__(self) -> int:
        return int(self.vertices.size)

    # -------------------------------------------------------------- #
    def take(self, mask: np.ndarray) -> "VisitorBatch":
        """Sub-batch of the rows where ``mask`` is true (order preserved)."""
        return VisitorBatch(
            self.vertices[mask],
            self.payloads[mask],
            self.parents[mask] if self.parents is not None else None,
            tuple(e[mask] for e in self.extras),
        )

    def slice(self, lo: int, hi: int) -> "VisitorBatch":
        """Contiguous sub-batch ``[lo, hi)`` (views, no copies)."""
        return VisitorBatch(
            self.vertices[lo:hi],
            self.payloads[lo:hi],
            self.parents[lo:hi] if self.parents is not None else None,
            tuple(e[lo:hi] for e in self.extras),
        )

    def split(self, k: int) -> tuple["VisitorBatch", "VisitorBatch"]:
        """Split into the first ``k`` visitors and the rest (both views)."""
        return self.slice(0, k), self.slice(k, len(self))

    @classmethod
    def concat(cls, batches: list["VisitorBatch"]) -> "VisitorBatch":
        """Concatenate in order (visitor order == arrival order)."""
        if len(batches) == 1:
            return batches[0]
        parents = None
        if batches[0].parents is not None:
            parents = np.concatenate([b.parents for b in batches])
        extras = tuple(
            np.concatenate([b.extras[j] for b in batches])
            for j in range(len(batches[0].extras))
        )
        return cls(
            np.concatenate([b.vertices for b in batches]),
            np.concatenate([b.payloads for b in batches]),
            parents,
            extras,
        )


class BatchStateArrays:
    """Array-backed per-vertex state for one rank (or one ghost table).

    ``values`` is the monotonic compare key (BFS length, SSSP distance, CC
    label); ``parents`` the optional tree pointer.  Row ``i`` holds the
    state of the ``i``-th vertex of the block this object was built for —
    callers translate vertex ids to row indices.

    State-array protocol
    --------------------
    Any per-rank state block (this class or an algorithm-specific one such
    as k-core's) exposes ``previsit_batch(idx, batch) -> mask``, the exact
    sequential equivalent of N ``pre_visit`` calls in batch order;
    ``snapshot()`` / ``restore(snap)`` for crash-recovery checkpoints; and
    ``__len__``.
    """

    __slots__ = ("values", "parents")

    def __init__(self, values: np.ndarray, parents: np.ndarray | None = None) -> None:
        self.values = values
        self.parents = parents

    def __len__(self) -> int:
        return int(self.values.size)

    def previsit_batch(self, idx: np.ndarray, batch: VisitorBatch) -> np.ndarray:
        """State-array protocol entry point (monotonic improve-or-drop)."""
        return self.previsit(idx, batch.payloads, batch.parents)

    def snapshot(self) -> dict:
        """Checkpointable copy of the mutable state arrays."""
        return {
            "values": self.values.copy(),
            "parents": self.parents.copy() if self.parents is not None else None,
        }

    def restore(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot` checkpoint in place."""
        self.values[:] = snap["values"]
        if self.parents is not None and snap["parents"] is not None:
            self.parents[:] = snap["parents"]

    # -------------------------------------------------------------- #
    def previsit(
        self,
        idx: np.ndarray,
        payloads: np.ndarray,
        parents: np.ndarray | None = None,
    ) -> np.ndarray:
        """Sequentially-equivalent batched strict improve-or-drop.

        For each position ``i`` in order: pass iff ``payloads[i]`` is
        strictly below the current value of row ``idx[i]``; a pass writes
        the payload (and parent) back before the next position is
        evaluated.  Returns the pass mask.

        The all-distinct case (no vertex appears twice in the batch) is
        fully vectorized; positions belonging to repeated vertices fall
        back to an exact scalar walk so within-batch races resolve exactly
        as the object path would.
        """
        n = idx.size
        values = self.values
        if n == 0:
            return np.zeros(0, dtype=bool)
        if n == 1:
            i = idx[0]
            ok = bool(payloads[0] < values[i])
            if ok:
                values[i] = payloads[0]
                if parents is not None and self.parents is not None:
                    self.parents[i] = parents[0]
            return np.array([ok])
        # Strict test against the pre-batch state.  Values only decrease,
        # so a position failing here fails sequentially too — this mask is
        # exact everywhere except where a vertex repeats among the
        # survivors (an earlier in-batch improvement may kill a later
        # arrival that beat the pre-batch value).
        mask = payloads < values[idx]
        if not mask.any():
            return mask
        viable = np.flatnonzero(mask)
        vidx = idx[viable]
        _, inverse, counts = np.unique(vidx, return_inverse=True, return_counts=True)
        dup = counts[inverse] > 1
        if not dup.any():
            values[vidx] = payloads[viable]
            if parents is not None and self.parents is not None:
                self.parents[vidx] = parents[viable]
            return mask
        uni_pos = viable[~dup]
        values[idx[uni_pos]] = payloads[uni_pos]
        if parents is not None and self.parents is not None:
            self.parents[idx[uni_pos]] = parents[uni_pos]
        # Exact sequential resolution for the surviving repeats, walked in
        # plain Python (python scalars beat numpy scalar indexing ~10x);
        # Python int/float comparisons are exact, so semantics are
        # unchanged.  Repeated and unique survivor vertices are disjoint
        # sets, so the vectorized update above cannot race with this walk.
        dpos = viable[dup]
        dvert = idx[dpos].tolist()
        dpay = payloads[dpos].tolist()
        dval = values[idx[dpos]].tolist()
        dpar = parents[dpos].tolist() if parents is not None else None
        cur: dict = {}
        cur_par: dict = {}
        out = []
        for k, j in enumerate(dvert):
            c = cur.get(j)
            if c is None:
                c = dval[k]
            p = dpay[k]
            if p < c:
                out.append(True)
                cur[j] = p
                if dpar is not None:
                    cur_par[j] = dpar[k]
            else:
                out.append(False)
                if j not in cur:
                    cur[j] = c
        mask[dpos] = out
        if cur:
            keys = np.fromiter(cur.keys(), dtype=np.int64, count=len(cur))
            values[keys] = np.fromiter(cur.values(), dtype=values.dtype, count=len(cur))
        if cur_par and self.parents is not None:
            keys = np.fromiter(cur_par.keys(), dtype=np.int64, count=len(cur_par))
            self.parents[keys] = np.fromiter(
                cur_par.values(), dtype=self.parents.dtype, count=len(cur_par)
            )
        return mask


class GhostArrayTable:
    """Array-backed ghost filter (the batch twin of
    :class:`~repro.graph.ghosts.GhostTable`).

    Ghost state is the same monotonic value array; lookup is a binary
    search over the sorted ghosted-vertex array.  Ghost parents are never
    read by any ``finalize``, so only values are stored.
    """

    __slots__ = ("vertices", "state", "filter_hits", "filter_passes")

    def __init__(self, vertices: np.ndarray, state: BatchStateArrays) -> None:
        order = np.argsort(vertices)
        self.vertices = np.ascontiguousarray(vertices[order], dtype=VID_DTYPE)
        self.state = BatchStateArrays(state.values[order], None)
        #: visitors killed by a ghost pre_visit (saved messages).
        self.filter_hits = 0
        #: visitors that passed a ghost pre_visit (forwarded to the master).
        self.filter_passes = 0

    def __len__(self) -> int:
        return int(self.vertices.size)

    def filter(
        self, targets: np.ndarray, payloads: np.ndarray
    ) -> tuple[np.ndarray, int, int]:
        """Ghost pre-visit over a push batch, in order.

        Returns ``(keep_mask, previsits, filtered)``: non-ghosted targets
        are always kept; ghosted targets are kept iff their sequentially-
        equivalent ghost pre_visit passes (which also updates ghost state).
        """
        pos = np.searchsorted(self.vertices, targets)
        pos_c = np.minimum(pos, self.vertices.size - 1)
        ghosted = self.vertices[pos_c] == targets
        n_ghosted = int(np.count_nonzero(ghosted))
        if n_ghosted == 0:
            return np.ones(targets.size, dtype=bool), 0, 0
        gmask = self.state.previsit(pos_c[ghosted], payloads[ghosted])
        keep = np.ones(targets.size, dtype=bool)
        keep[np.flatnonzero(ghosted)[~gmask]] = False
        passed = int(np.count_nonzero(gmask))
        self.filter_hits += n_ghosted - passed
        self.filter_passes += passed
        return keep, n_ghosted, n_ghosted - passed

    # -------------------------------------------------------------- #
    def snapshot_state(self) -> dict:
        """Checkpointable ghost state (value-array copy)."""
        return {
            "values": self.state.values.copy(),
            "filter_hits": self.filter_hits,
            "filter_passes": self.filter_passes,
        }

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` checkpoint in place."""
        self.state.values[:] = snap["values"]
        self.filter_hits = snap["filter_hits"]
        self.filter_passes = snap["filter_passes"]


def occurrence_counts(values: np.ndarray) -> np.ndarray:
    """Per-position within-batch arrival index: ``occ[i]`` is the number of
    earlier positions ``j < i`` with ``values[j] == values[i]``.

    This is what lets counting pre-visits (k-core decrements, PageRank
    drain dedup) resolve within-batch duplicates exactly as the object
    path's one-at-a-time arrival order would, without a Python loop: a
    stable sort groups equal values while preserving arrival order inside
    each group, so the within-group offset *is* the arrival index.
    """
    n = values.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    starts = np.flatnonzero(np.r_[True, sorted_vals[1:] != sorted_vals[:-1]])
    lens = np.diff(np.r_[starts, n])
    occ = np.empty(n, dtype=np.int64)
    occ[order] = np.arange(n, dtype=np.int64) - np.repeat(starts, lens)
    return occ


class SharedArrayBlock:
    """A shared-memory arena backing a set of named numpy arrays.

    The parallel executor (:mod:`repro.runtime.parallel`) rebinds each
    rank's SoA state arrays onto one of these arenas *before* forking its
    worker pool: the backing store is an anonymous ``MAP_SHARED`` mapping,
    so forked workers mutate the very pages the parent reads — final batch
    states come back zero-copy, with no per-tick serialization and no named
    segments to unlink.  Layout is a 64-byte-aligned offset per array.
    """

    ALIGN = 64

    __slots__ = ("_mmap", "layout", "nbytes")

    def __init__(self, arrays: list[tuple[str, np.ndarray]]) -> None:
        offset = 0
        layout: dict[str, tuple[int, np.dtype, tuple[int, ...]]] = {}
        for name, arr in arrays:
            layout[name] = (offset, arr.dtype, arr.shape)
            offset += -(-arr.nbytes // self.ALIGN) * self.ALIGN
        self.layout = layout
        self.nbytes = offset
        self._mmap = mmap.mmap(-1, max(offset, mmap.PAGESIZE))
        for name, arr in arrays:
            np.copyto(self.view(name), arr)

    def view(self, name: str) -> np.ndarray:
        """Writable array view over this arena (valid in parent and in any
        process forked after construction)."""
        offset, dtype, shape = self.layout[name]
        count = int(np.prod(shape)) if shape else 1
        return np.frombuffer(
            self._mmap, dtype=dtype, count=count, offset=offset
        ).reshape(shape)

    def close(self) -> None:
        """Release the mapping.  Callers must drop every view first —
        ``mmap`` refuses to close while exported buffers exist."""
        self._mmap.close()


def _state_array_attrs(state) -> list[str]:
    """Names of the ndarray attributes of a state-array block, in slot
    declaration order (the state-array protocol classes are all
    ``__slots__``-based)."""
    names: list[str] = []
    for klass in type(state).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name not in names and isinstance(
                getattr(state, name, None), np.ndarray
            ):
                names.append(name)
    return names


def share_state_arrays(state) -> SharedArrayBlock | None:
    """Move a state-array block's ndarray attributes into a
    :class:`SharedArrayBlock` and rebind them as views (zero-copy attach
    for processes forked afterwards).  Returns the arena, or None when the
    block holds no arrays.  All state-array classes mutate and ``restore``
    in place, so rebinding is behaviour-preserving."""
    names = _state_array_attrs(state)
    if not names:
        return None
    block = SharedArrayBlock([(n, getattr(state, n)) for n in names])
    for n in names:
        setattr(state, n, block.view(n))
    return block


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """``concatenate([arange(s, s + l) for s, l in zip(starts, lengths)])``
    without the Python loop (the classic repeat/cumsum expansion)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_ends = np.cumsum(lengths)
    out = np.repeat(np.asarray(starts, dtype=np.int64), lengths)
    out += np.arange(total, dtype=np.int64) - np.repeat(seg_ends - lengths, lengths)
    return out
