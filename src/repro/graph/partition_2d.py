"""2D block (adjacency-matrix) partitioning — the second baseline.

"Recent work has advocated the use of 2D partitioning, where each partition
receives a 2D block of the adjacency matrix.  In effect, this partitions the
hub's adjacency list across O(sqrt(p)) partitions, and significantly
improves data balance" (Figure 2).  Section VIII-A describes its drawbacks —
hypersparse blocks once ``sqrt(p) > degree(g)`` and ``O(V / sqrt(p))``
per-partition algorithm state — which :func:`hypersparsity_report`
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.graph.edge_list import EdgeList
from repro.types import VID_DTYPE


def grid_shape(num_partitions: int) -> tuple[int, int]:
    """Most-square factorisation ``r * c == num_partitions`` with ``r <= c``."""
    if num_partitions < 1:
        raise PartitioningError(f"need at least 1 partition, got {num_partitions}")
    r = int(np.sqrt(num_partitions))
    while r >= 1:
        if num_partitions % r == 0:
            return r, num_partitions // r
        r -= 1
    return 1, num_partitions  # pragma: no cover - unreachable (r=1 divides)


@dataclass(frozen=True)
class TwoDBlockPartitioning:
    """Checkerboard decomposition of the adjacency matrix into ``r x c`` blocks."""

    num_vertices: int
    rows: int
    cols: int

    @classmethod
    def build(cls, num_vertices: int, num_partitions: int) -> TwoDBlockPartitioning:
        """Create an ``r x c`` grid (most-square factorisation of ``p``)."""
        r, c = grid_shape(num_partitions)
        if num_vertices < max(r, c):
            raise PartitioningError(
                f"cannot split {num_vertices} vertices across a {r}x{c} grid"
            )
        return cls(num_vertices=num_vertices, rows=r, cols=c)

    @property
    def num_partitions(self) -> int:
        return self.rows * self.cols

    def block_of(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Linear block index for each edge ``(src, dst)`` (vectorised)."""
        n = self.num_vertices
        br = np.minimum((np.asarray(src) * self.rows) // n, self.rows - 1)
        bc = np.minimum((np.asarray(dst) * self.cols) // n, self.cols - 1)
        return (br * self.cols + bc).astype(VID_DTYPE)

    def edge_counts(self, edges: EdgeList) -> np.ndarray:
        """Edges per block — the Figure 2 comparison series."""
        blocks = self.block_of(edges.src, edges.dst)
        return np.bincount(blocks, minlength=self.num_partitions).astype(VID_DTYPE)

    def state_words_per_partition(self) -> int:
        """Per-partition algorithm-state footprint in vertex-state words.

        Every block row must hold state for its ``V / r`` source vertices
        (and symmetrically ``V / c`` targets); the paper's scaling-wall
        argument is that this is ``O(V / sqrt(p))`` instead of ``O(V / p)``.
        """
        return int(np.ceil(self.num_vertices / self.rows) + np.ceil(self.num_vertices / self.cols))


def hypersparsity_report(edges: EdgeList, partitioning: TwoDBlockPartitioning) -> dict:
    """Quantify Section VIII-A's hypersparsity critique for one graph.

    A block is *hypersparse* when it holds fewer edges than source vertices
    (``edges_in_block < V / r``).
    """
    counts = partitioning.edge_counts(edges)
    rows_vertices = partitioning.num_vertices / partitioning.rows
    hypersparse = int(np.count_nonzero(counts < rows_vertices))
    return {
        "num_blocks": int(counts.size),
        "hypersparse_blocks": hypersparse,
        "hypersparse_fraction": hypersparse / counts.size,
        "vertices_per_block_row": rows_vertices,
        "mean_edges_per_block": float(counts.mean()) if counts.size else 0.0,
    }
