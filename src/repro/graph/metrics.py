"""Partition-quality metrics (Figure 2 and the Section VIII-A critique)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edge_list import EdgeList
from repro.graph.partition_1d import OneDPartitioning
from repro.graph.partition_2d import TwoDBlockPartitioning
from repro.graph.partition_edge_list import EdgeListPartitioning
from repro.utils.stats import imbalance


@dataclass(frozen=True)
class PartitionQuality:
    """Edge-balance summary for one (graph, strategy, p) combination."""

    strategy: str
    num_partitions: int
    edge_imbalance: float
    max_edges: int
    mean_edges: float

    @classmethod
    def from_counts(cls, strategy: str, counts: np.ndarray) -> PartitionQuality:
        return cls(
            strategy=strategy,
            num_partitions=int(counts.size),
            edge_imbalance=imbalance(counts),
            max_edges=int(counts.max(initial=0)),
            mean_edges=float(counts.mean()) if counts.size else 0.0,
        )


def quality_1d(edges: EdgeList, num_partitions: int) -> PartitionQuality:
    """Edge imbalance of 1D block partitioning (Figure 2's '1D' series)."""
    counts = OneDPartitioning.build(edges.num_vertices, num_partitions).edge_counts(edges)
    return PartitionQuality.from_counts("1d", counts)


def quality_2d(edges: EdgeList, num_partitions: int) -> PartitionQuality:
    """Edge imbalance of 2D block partitioning (Figure 2's '2D' series)."""
    counts = TwoDBlockPartitioning.build(edges.num_vertices, num_partitions).edge_counts(edges)
    return PartitionQuality.from_counts("2d", counts)


def quality_edge_list(edges: EdgeList, num_partitions: int) -> PartitionQuality:
    """Edge imbalance of edge list partitioning (exactly balanced by
    construction, so imbalance is 1.0 up to rounding of ``m / p``)."""
    sorted_edges = edges.sorted_by_source()
    counts = EdgeListPartitioning.build(sorted_edges, num_partitions).edge_counts()
    return PartitionQuality.from_counts("edge_list", counts)
