"""Subgraph extraction utilities.

Real workflows trim a raw graph before traversal: Graph500-style studies
search inside the giant connected component, k-core analyses iterate on
extracted cores, and scaling studies sample vertex subsets.  These helpers
produce *relabelled* :class:`EdgeList` instances (compact vertex ids) plus
the mapping back to the original ids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edge_list import EdgeList
from repro.reference.components import component_labels
from repro.types import VID_DTYPE


@dataclass(frozen=True)
class Subgraph:
    """An extracted, relabelled subgraph."""

    edges: EdgeList
    #: original_ids[new_id] -> vertex id in the source graph
    original_ids: np.ndarray

    @property
    def num_vertices(self) -> int:
        return self.edges.num_vertices

    def to_original(self, new_ids: np.ndarray) -> np.ndarray:
        """Map compact ids back to the source graph's ids."""
        return self.original_ids[np.asarray(new_ids)]


def induced_subgraph(edges: EdgeList, vertices: np.ndarray) -> Subgraph:
    """The subgraph induced by ``vertices`` (both endpoints must be kept).

    Vertices are relabelled ``0..len(vertices)-1`` in ascending original-id
    order; duplicate inputs are collapsed.
    """
    keep = np.unique(np.asarray(vertices, dtype=VID_DTYPE))
    if keep.size and (keep[0] < 0 or keep[-1] >= edges.num_vertices):
        raise ValueError("subgraph vertices out of range")
    mask = np.zeros(edges.num_vertices, dtype=bool)
    mask[keep] = True
    edge_mask = mask[edges.src] & mask[edges.dst]
    relabel = np.full(edges.num_vertices, -1, dtype=VID_DTYPE)
    relabel[keep] = np.arange(keep.size, dtype=VID_DTYPE)
    return Subgraph(
        edges=EdgeList(
            src=relabel[edges.src[edge_mask]],
            dst=relabel[edges.dst[edge_mask]],
            num_vertices=int(keep.size),
        ),
        original_ids=keep,
    )


def largest_component(edges: EdgeList) -> Subgraph:
    """The giant connected component, relabelled compactly.

    Uses the sequential reference component labelling (the operation is a
    preprocessing step, not part of the traversal under study).
    """
    if edges.num_vertices == 0:
        return Subgraph(edges=edges, original_ids=np.empty(0, dtype=VID_DTYPE))
    labels = component_labels(edges)
    values, counts = np.unique(labels, return_counts=True)
    giant = values[np.argmax(counts)]
    return induced_subgraph(edges, np.flatnonzero(labels == giant))


def kcore_subgraph(edges: EdgeList, k: int) -> Subgraph:
    """The k-core as an extracted subgraph (reference peeling)."""
    from repro.reference.kcore import kcore_members

    members = np.flatnonzero(kcore_members(edges, k))
    return induced_subgraph(edges, members)
