"""Vertex locator directory: constant-time owner lookups.

Section III-A1 gives two implementations of ``min_owner`` / ``max_owner``:
an ``O(lg p)`` binary search, or constant time "by preserving the rank owner
information with the identifier v.  We choose to store the owner information
as part of the identifier."

:class:`LocatorDirectory` realises the latter: a per-vertex packed 64-bit
locator (see :mod:`repro.utils.bitpack`) carrying the vertex id, its master
rank, and its replica span.  The directory also exposes plain array lookups
for hot paths inside the simulator, where unpacking is unnecessary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.partition_edge_list import EdgeListPartitioning
from repro.utils import bitpack


@dataclass(frozen=True)
class LocatorDirectory:
    """Packed locators plus raw owner arrays for all vertices."""

    packed: np.ndarray
    min_owners: np.ndarray
    max_owners: np.ndarray

    @classmethod
    def from_partitioning(cls, partitioning: EdgeListPartitioning) -> LocatorDirectory:
        """Build the directory from an edge-list partitioning."""
        return cls(
            packed=partitioning.locators(),
            min_owners=partitioning.min_owners,
            max_owners=partitioning.max_owners,
        )

    def locator(self, v: int) -> int:
        """The packed locator identifier for vertex ``v``."""
        return int(self.packed[v])

    def vertex(self, locator: int) -> int:
        """Recover the global vertex id from a packed locator."""
        return bitpack.vertex_of(locator)

    def min_owner(self, v: int) -> int:
        """Master rank of ``v`` (constant-time array lookup)."""
        return int(self.min_owners[v])

    def max_owner(self, v: int) -> int:
        """Last replica rank of ``v``."""
        return int(self.max_owners[v])

    def min_owner_from_locator(self, locator: int) -> int:
        """Master rank decoded *from the identifier itself* — no directory
        access, mirroring the paper's chosen representation."""
        return bitpack.min_owner_of(locator)

    def max_owner_from_locator(self, locator: int) -> int:
        """Last replica rank decoded from the identifier (exact while the
        replica span fits the 8-bit field; the builder guarantees spans are
        at most ``p - 1``)."""
        return bitpack.max_owner_of(locator)
