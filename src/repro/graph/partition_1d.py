"""1D block partitioning — the baseline the paper improves on.

"The simplest partitioning is 1D, where each partition receives an equal
number of vertices and their associated adjacency list.  In 1D, the
adjacency list of a vertex is assigned to a single partition.  This simple
partitioning leads to significant data imbalance ... because a single hub's
adjacency list can exceed the average edge count per partition."

Vertices are split into ``p`` contiguous blocks of (nearly) equal vertex
count; partition ``i`` owns vertices ``[i * n // p, (i+1) * n // p)`` and
every out-edge of those vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.graph.edge_list import EdgeList
from repro.types import VID_DTYPE


@dataclass(frozen=True)
class OneDPartitioning:
    """Assignment of vertices (and their adjacency lists) to ``p`` blocks."""

    num_vertices: int
    num_partitions: int
    #: vertex_bounds[i] .. vertex_bounds[i+1] is partition i's vertex range.
    vertex_bounds: np.ndarray

    @classmethod
    def build(cls, num_vertices: int, num_partitions: int) -> OneDPartitioning:
        """Create equal-vertex-count blocks."""
        if num_partitions < 1:
            raise PartitioningError(f"need at least 1 partition, got {num_partitions}")
        if num_vertices < num_partitions:
            raise PartitioningError(
                f"cannot split {num_vertices} vertices into {num_partitions} non-empty blocks"
            )
        bounds = (np.arange(num_partitions + 1, dtype=VID_DTYPE) * num_vertices) // num_partitions
        return cls(
            num_vertices=num_vertices, num_partitions=num_partitions, vertex_bounds=bounds
        )

    def owner(self, v: np.ndarray | int):
        """Rank owning vertex ``v`` (vectorised)."""
        out = np.searchsorted(self.vertex_bounds, np.asarray(v), side="right") - 1
        out = np.minimum(out, self.num_partitions - 1)
        return int(out) if out.ndim == 0 else out.astype(VID_DTYPE)

    def vertex_range(self, rank: int) -> tuple[int, int]:
        """Half-open vertex range ``[lo, hi)`` owned by ``rank``."""
        return int(self.vertex_bounds[rank]), int(self.vertex_bounds[rank + 1])

    def edge_counts(self, edges: EdgeList) -> np.ndarray:
        """Edges per partition — the distribution whose imbalance Figure 2
        (and Figure 12's memory blow-up) is about."""
        owners = self.owner(edges.src)
        return np.bincount(owners, minlength=self.num_partitions).astype(VID_DTYPE)
