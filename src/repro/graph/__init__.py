"""Graph storage and partitioning substrates.

* :class:`repro.graph.edge_list.EdgeList` — the canonical in-memory edge
  list (sort, symmetrise, dedup, permute, degree queries).
* :class:`repro.graph.csr.CSR` — compressed-sparse-row adjacency, the
  storage format used by every partition ("we choose to store each local
  partition as a compressed sparse row").
* Partitioners: 1D block (:mod:`repro.graph.partition_1d`), 2D block
  (:mod:`repro.graph.partition_2d`) and the paper's *edge list
  partitioning* (:mod:`repro.graph.partition_edge_list`).
* :class:`repro.graph.distributed.DistributedGraph` — the facade the
  visitor-queue framework traverses.
"""

from repro.graph.csr import CSR
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.graph.ghosts import GhostTable, select_ghost_candidates
from repro.graph.partition_1d import OneDPartitioning
from repro.graph.partition_2d import TwoDBlockPartitioning
from repro.graph.partition_edge_list import EdgeListPartitioning

__all__ = [
    "EdgeList",
    "CSR",
    "OneDPartitioning",
    "TwoDBlockPartitioning",
    "EdgeListPartitioning",
    "DistributedGraph",
    "GhostTable",
    "select_ghost_candidates",
]
