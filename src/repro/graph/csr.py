"""Compressed-sparse-row adjacency storage.

"The underlying storage of each edge list partition is flexible; we choose
to store each local partition as a *compressed sparse row*."

A :class:`CSR` stores adjacency for a *contiguous vertex range*
``[vertex_base, vertex_base + num_rows)``, which is exactly what an edge
list partition needs: partition ``i`` holds rows for the sources appearing
in its edge slice.  Row targets are sorted ascending so membership tests
(the closing-edge check of triangle counting) are ``O(log d)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphConstructionError
from repro.types import VID_DTYPE


def _bulk_lower_bound(
    cols: np.ndarray, lo: np.ndarray, hi: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Lower bound of ``targets[i]`` within ``cols[lo[i]:hi[i]]`` for every
    query at once: all windows are bisected in lockstep, each halving pass
    one vectorized compare, so N queries cost ``O(log max_window)`` numpy
    operations total instead of N Python-level binary searches."""
    lo = lo.copy()
    hi = hi.copy()
    open_q = lo < hi
    while open_q.any():
        mid = (lo + hi) >> 1
        # Closed windows keep lo == hi; give them a safe in-bounds probe.
        probe = np.where(open_q, mid, 0)
        less = cols[probe] < targets
        adv = open_q & less
        shr = open_q & ~less
        lo[adv] = mid[adv] + 1
        hi[shr] = mid[shr]
        open_q = lo < hi
    return lo


@dataclass(frozen=True)
class CSR:
    """CSR adjacency over global vertex ids ``vertex_base + row``."""

    row_ptr: np.ndarray  # int64, len num_rows + 1
    cols: np.ndarray  # int64, len num_edges, sorted within each row
    vertex_base: int = 0

    def __post_init__(self) -> None:
        rp = np.ascontiguousarray(self.row_ptr, dtype=VID_DTYPE)
        cols = np.ascontiguousarray(self.cols, dtype=VID_DTYPE)
        object.__setattr__(self, "row_ptr", rp)
        object.__setattr__(self, "cols", cols)
        if rp.ndim != 1 or rp.size < 1:
            raise GraphConstructionError("row_ptr must be a non-empty 1-D array")
        if rp[0] != 0 or rp[-1] != cols.size:
            raise GraphConstructionError(
                f"row_ptr must start at 0 and end at num_edges ({cols.size}), "
                f"got [{rp[0]}, {rp[-1]}]"
            )
        if np.any(np.diff(rp) < 0):
            raise GraphConstructionError("row_ptr must be non-decreasing")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        *,
        vertex_base: int = 0,
        num_rows: int | None = None,
        sort_rows: bool = True,
    ) -> CSR:
        """Build CSR from edges whose sources lie in
        ``[vertex_base, vertex_base + num_rows)``."""
        src = np.asarray(src, dtype=VID_DTYPE)
        dst = np.asarray(dst, dtype=VID_DTYPE)
        local = src - vertex_base
        if num_rows is None:
            num_rows = int(local.max(initial=-1)) + 1
        if local.size and (local.min() < 0 or local.max() >= num_rows):
            raise GraphConstructionError(
                f"edge sources outside row range [{vertex_base}, {vertex_base + num_rows})"
            )
        counts = np.bincount(local, minlength=num_rows)
        row_ptr = np.zeros(num_rows + 1, dtype=VID_DTYPE)
        np.cumsum(counts, out=row_ptr[1:])
        if sort_rows:
            order = np.lexsort((dst, local))
        else:
            order = np.argsort(local, kind="stable")
        return cls(row_ptr=row_ptr, cols=dst[order], vertex_base=vertex_base)

    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of vertex rows stored."""
        return int(self.row_ptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges."""
        return int(self.cols.size)

    def row_range(self, v: int) -> tuple[int, int]:
        """``(start, stop)`` indices into :attr:`cols` for vertex ``v``."""
        r = v - self.vertex_base
        if r < 0 or r >= self.num_rows:
            raise IndexError(f"vertex {v} outside CSR range "
                             f"[{self.vertex_base}, {self.vertex_base + self.num_rows})")
        return int(self.row_ptr[r]), int(self.row_ptr[r + 1])

    def neighbors(self, v: int) -> np.ndarray:
        """View of the adjacency row of global vertex ``v``."""
        lo, hi = self.row_range(v)
        return self.cols[lo:hi]

    def degree(self, v: int) -> int:
        """Local out-degree of ``v`` (only this partition's slice)."""
        lo, hi = self.row_range(v)
        return hi - lo

    def has_edge(self, v: int, w: int) -> bool:
        """Membership test ``(v, w) in E``; scalar front end of the bulk
        :meth:`has_edges` kernel, so the object path's closing-edge check
        and the batch path share one membership primitive."""
        return bool(
            self.has_edges(
                np.array([v], dtype=VID_DTYPE), np.array([w], dtype=VID_DTYPE)
            )[0]
        )

    def _row_bounds(self, sources: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` cols-index bounds of each source's row (validated)."""
        r = np.asarray(sources, dtype=VID_DTYPE) - self.vertex_base
        if r.size and (int(r.min()) < 0 or int(r.max()) >= self.num_rows):
            raise IndexError(
                f"vertices outside CSR range [{self.vertex_base}, "
                f"{self.vertex_base + self.num_rows})"
            )
        return self.row_ptr[r], self.row_ptr[r + 1]

    def has_edges(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Bulk membership test: ``out[i] = (sources[i], targets[i]) in E``.

        One vectorized binary search over all queries at once (rows are
        sorted): every query keeps its own ``[lo, hi)`` window into
        :attr:`cols` and all windows are bisected in lockstep, so the whole
        batch costs ``O(log max_degree)`` numpy passes instead of one
        Python-level ``searchsorted`` call per query.  This is the closing-
        edge kernel of batched triangle counting.
        """
        targets = np.asarray(targets, dtype=VID_DTYPE)
        lo, hi = self._row_bounds(sources)
        pos = _bulk_lower_bound(self.cols, lo, hi, targets)
        hit = pos < hi
        if hit.any():
            hit[hit] = self.cols[pos[hit]] == targets[hit]
        return hit

    def row_suffix_above(
        self, sources: np.ndarray, bounds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, lengths)`` of each row's strict suffix ``> bounds[i]``.

        Vectorized upper-bound search (same lockstep bisection as
        :meth:`has_edges`); used by batched triangle counting to expand
        only the ``w > v`` targets, matching Algorithm 6's increasing-order
        discipline without scanning the full row.
        """
        lo, hi = self._row_bounds(sources)
        starts = _bulk_lower_bound(
            self.cols, lo, hi, np.asarray(bounds, dtype=VID_DTYPE) + 1
        )
        return starts, hi - starts

    def nbytes(self) -> int:
        """Approximate resident size in bytes (used by the external-memory
        footprint accounting)."""
        return int(self.row_ptr.nbytes + self.cols.nbytes)
