"""Ghost vertices (Sections III-A2 and IV-B).

"To mitigate the communication hotspots created by hubs, we selectively use
ghost information ... Each partition locally identifies high-degree vertices
from its edges' targets to become ghost vertices.  The ghost information is
never globally synchronized, and represents only the local partitions' view
of remote hubs."

Selection is purely local: a partition ranks the *targets* of its own edge
slice by local in-degree and keeps the top ``k``.  A ghost is only useful
when the partition has at least two edges pointing at the vertex (otherwise
there is nothing to filter); the paper's observation that "when
``degree(v) > p`` there is an opportunity for ghosts to have a positive
effect" is the global version of the same condition.

Ghost *state* is algorithm-specific and created per traversal — ghosts act
as imprecise ``pre_visit`` filters, so only algorithms that declare ghost
usage (BFS; not k-core, not triangle counting) get a table.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.types import VID_DTYPE


def select_ghost_candidates(
    local_targets: np.ndarray,
    *,
    num_ghosts: int,
    rank: int,
    min_owners: np.ndarray,
    min_local_indegree: int = 2,
) -> np.ndarray:
    """Pick up to ``num_ghosts`` ghost vertices for one partition.

    ``local_targets`` is the ``dst`` column of the partition's edge slice.
    Vertices mastered by this very rank are excluded (a local master needs
    no ghost — its authoritative state is already here), as are targets the
    partition references fewer than ``min_local_indegree`` times.

    Returns vertex ids sorted by descending local in-degree (ties broken by
    ascending id for determinism).
    """
    if num_ghosts < 0:
        raise ValueError(f"num_ghosts must be >= 0, got {num_ghosts}")
    if num_ghosts == 0 or local_targets.size == 0:
        return np.empty(0, dtype=VID_DTYPE)
    vertices, counts = np.unique(local_targets, return_counts=True)
    eligible = (counts >= min_local_indegree) & (min_owners[vertices] != rank)
    vertices, counts = vertices[eligible], counts[eligible]
    if vertices.size == 0:
        return np.empty(0, dtype=VID_DTYPE)
    # Descending count, ascending vertex id on ties.
    order = np.lexsort((vertices, -counts))
    return vertices[order[:num_ghosts]].astype(VID_DTYPE)


class GhostTable:
    """Per-partition ghost state: local, never globally synchronised.

    Maps vertex id -> algorithm state object.  The table implements the two
    graph operations the distributed visitor queue needs
    (Section V): ``has_local_ghost(v)`` and ``local_ghost(v)``.
    """

    __slots__ = ("_states", "filter_hits", "filter_passes")

    def __init__(self, vertices: np.ndarray, state_factory) -> None:
        self._states = {int(v): state_factory(int(v)) for v in vertices}
        #: visitors killed by a ghost pre_visit (saved messages).
        self.filter_hits = 0
        #: visitors that passed a ghost pre_visit (forwarded to the master).
        self.filter_passes = 0

    def __len__(self) -> int:
        return len(self._states)

    def has_local_ghost(self, v: int) -> bool:
        """True if local ghost information is stored for ``v``."""
        return v in self._states

    def local_ghost(self, v: int):
        """The locally stored ghost state for ``v``."""
        return self._states[v]

    def vertices(self) -> list[int]:
        """All ghosted vertex ids (deterministic order)."""
        return sorted(self._states)

    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Checkpointable ghost state (deep copy — ghost state objects are
        mutated by ``pre_visit``)."""
        return {
            "states": copy.deepcopy(self._states),
            "filter_hits": self.filter_hits,
            "filter_passes": self.filter_passes,
        }

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` checkpoint in place."""
        self._states = copy.deepcopy(snap["states"])
        self.filter_hits = snap["filter_hits"]
        self.filter_passes = snap["filter_passes"]
