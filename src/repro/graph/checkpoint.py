"""Checkpointing a partitioned graph.

Building a :class:`DistributedGraph` involves the global sort, owner
directories, per-partition CSRs and ghost selection — a one-off cost worth
persisting when the same graph serves many experiment sessions (exactly
the Graph500 usage where one constructed graph serves 64+ searches).

The checkpoint stores the sorted edge list plus the build parameters and
re-derives the partition structures on load; partitioning is deterministic,
so the loaded graph is bit-identical to the saved one (asserted in tests)
while the archive stays compact (edges only, not the derived arrays).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList

_FORMAT_VERSION = 1


def save_distributed_graph(graph: DistributedGraph, path: str | Path) -> None:
    """Write a partitioned graph checkpoint (``.npz``).

    The persisted ``num_ghosts`` is the build-time *budget*, not the
    largest materialized candidate set: a graph whose partitions all
    selected fewer candidates than the budget must still round-trip to the
    same configuration (a later rebuild on different data would otherwise
    silently shrink the ghost budget).
    """
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_FORMAT_VERSION),
        src=graph.edges.src,
        dst=graph.edges.dst,
        num_vertices=np.int64(graph.num_vertices),
        num_partitions=np.int64(graph.num_partitions),
        strategy=np.bytes_(graph.strategy.encode()),
        num_ghosts=np.int64(graph.num_ghosts),
    )


def load_distributed_graph(path: str | Path) -> DistributedGraph:
    """Rebuild a partitioned graph from a checkpoint.

    The rebuild is deterministic, so owner directories, state ranges, CSRs
    and ghost candidate sets all match the graph that was saved.
    """
    path = Path(path)
    with np.load(path) as archive:
        try:
            version = int(archive["format_version"])
            if version != _FORMAT_VERSION:
                raise GraphConstructionError(
                    f"{path}: checkpoint format {version} not supported "
                    f"(expected {_FORMAT_VERSION})"
                )
            edges = EdgeList(
                src=archive["src"],
                dst=archive["dst"],
                num_vertices=int(archive["num_vertices"]),
                sorted_by_src=True,  # DistributedGraph always stores sorted
            )
            return DistributedGraph.build(
                edges,
                int(archive["num_partitions"]),
                strategy=bytes(archive["strategy"]).decode(),
                num_ghosts=int(archive["num_ghosts"]),
            )
        except KeyError as exc:
            raise GraphConstructionError(
                f"{path} is not a repro graph checkpoint (missing {exc})"
            ) from None
