"""The canonical edge-list container.

An :class:`EdgeList` is a pair of ``int64`` NumPy arrays plus a vertex
count.  It is immutable by convention: every transformation
(:meth:`EdgeList.sorted_by_source`, :meth:`EdgeList.symmetrized`, ...)
returns a new instance, so partitioners can rely on the input never
changing under them.

The paper's pipeline is::

    generator -> permute labels -> symmetrize (undirected algorithms)
              -> sort by source -> edge list partitioning

"Requiring the edge list to be globally sorted is an additional step that is
not needed by 1D or 2D graph partitioning.  This is not an onerous
requirement, because there are numerous distributed memory and external
memory sorting algorithms" — here a NumPy stable argsort stands in for the
distributed sort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphConstructionError
from repro.types import VID_DTYPE
from repro.utils.rng import resolve_rng


@dataclass(frozen=True)
class EdgeList:
    """A directed edge list over vertices ``0 .. num_vertices - 1``."""

    src: np.ndarray
    dst: np.ndarray
    num_vertices: int
    #: True when the instance is known to be sorted by source (stable).
    sorted_by_src: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=VID_DTYPE)
        dst = np.ascontiguousarray(self.dst, dtype=VID_DTYPE)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphConstructionError(
                f"src/dst must be 1-D arrays of equal length, got {src.shape} vs {dst.shape}"
            )
        if self.num_vertices < 0:
            raise GraphConstructionError(f"num_vertices must be >= 0, got {self.num_vertices}")
        if src.size:
            lo = min(int(src.min()), int(dst.min()))
            hi = max(int(src.max()), int(dst.max()))
            if lo < 0 or hi >= self.num_vertices:
                raise GraphConstructionError(
                    f"edge endpoints [{lo}, {hi}] out of range for {self.num_vertices} vertices"
                )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls, src: np.ndarray, dst: np.ndarray, num_vertices: int | None = None
    ) -> EdgeList:
        """Build from raw arrays; infers ``num_vertices`` when omitted."""
        src = np.asarray(src, dtype=VID_DTYPE)
        dst = np.asarray(dst, dtype=VID_DTYPE)
        if num_vertices is None:
            num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
        return cls(src=src, dst=dst, num_vertices=num_vertices)

    @classmethod
    def from_pairs(cls, pairs, num_vertices: int | None = None) -> EdgeList:
        """Build from an iterable of ``(u, v)`` pairs (tests, examples)."""
        pairs = list(pairs)
        if not pairs:
            empty = np.empty(0, dtype=VID_DTYPE)
            return cls(src=empty, dst=empty.copy(), num_vertices=num_vertices or 0)
        arr = np.asarray(pairs, dtype=VID_DTYPE)
        return cls.from_arrays(arr[:, 0], arr[:, 1], num_vertices)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.src.size)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.bincount(self.src, minlength=self.num_vertices).astype(VID_DTYPE)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.bincount(self.dst, minlength=self.num_vertices).astype(VID_DTYPE)

    def degrees(self) -> np.ndarray:
        """Total degree (in + out); equals undirected degree on a
        symmetrized list."""
        return self.out_degrees() + self.in_degrees()

    # ------------------------------------------------------------------ #
    # Transformations (all return new instances)
    # ------------------------------------------------------------------ #
    def sorted_by_source(self) -> EdgeList:
        """Stable sort by source vertex — the precondition of edge list
        partitioning (Section III-A1)."""
        if self.sorted_by_src:
            return self
        order = np.argsort(self.src, kind="stable")
        return EdgeList(
            src=self.src[order],
            dst=self.dst[order],
            num_vertices=self.num_vertices,
            sorted_by_src=True,
        )

    def symmetrized(self) -> EdgeList:
        """Append the reverse of every edge (undirected view).

        Self loops are not duplicated.  The result is *not* deduplicated;
        chain with :meth:`deduplicated` when a simple graph is required.
        """
        loops = self.src == self.dst
        rev_src = self.dst[~loops]
        rev_dst = self.src[~loops]
        return EdgeList(
            src=np.concatenate([self.src, rev_src]),
            dst=np.concatenate([self.dst, rev_dst]),
            num_vertices=self.num_vertices,
        )

    def without_self_loops(self) -> EdgeList:
        """Drop edges ``(v, v)``."""
        keep = self.src != self.dst
        return EdgeList(
            src=self.src[keep],
            dst=self.dst[keep],
            num_vertices=self.num_vertices,
            sorted_by_src=self.sorted_by_src,
        )

    def deduplicated(self) -> EdgeList:
        """Keep one copy of each distinct ``(src, dst)`` pair.

        The result is sorted by source (a by-product of the dedup sort).
        """
        if self.num_edges == 0:
            return EdgeList(
                src=self.src, dst=self.dst, num_vertices=self.num_vertices, sorted_by_src=True
            )
        # Pack pairs into single keys for a one-pass unique.  num_vertices
        # fits in int64 so src * n + dst cannot collide (guard overflow).
        n = max(self.num_vertices, 1)
        if n < (1 << 31):
            keys = self.src * n + self.dst
            uniq = np.unique(keys)
            return EdgeList(
                src=(uniq // n), dst=(uniq % n), num_vertices=self.num_vertices, sorted_by_src=True
            )
        order = np.lexsort((self.dst, self.src))
        s, t = self.src[order], self.dst[order]
        keep = np.ones(s.size, dtype=bool)
        keep[1:] = (s[1:] != s[:-1]) | (t[1:] != t[:-1])
        return EdgeList(src=s[keep], dst=t[keep], num_vertices=self.num_vertices, sorted_by_src=True)

    def permuted(self, seed: int | np.random.Generator | None = None) -> EdgeList:
        """Uniformly permute vertex labels (destroys generator locality)."""
        rng = resolve_rng(seed)
        perm = rng.permutation(self.num_vertices).astype(VID_DTYPE)
        return EdgeList(src=perm[self.src], dst=perm[self.dst], num_vertices=self.num_vertices)

    def simple_undirected(self) -> EdgeList:
        """Convenience pipeline: drop self loops, symmetrize, dedup.

        This is the canonical input for the undirected algorithms (k-core,
        triangle counting) and for undirected BFS.
        """
        return self.without_self_loops().symmetrized().deduplicated()
