"""Edge-list file I/O.

Two formats:

* **binary** (``.npz``): NumPy-archived ``src``/``dst`` arrays plus the
  vertex count and a sorted flag — lossless and fast, the natural format
  for checkpointing a prepared (permuted, symmetrized, sorted) graph so
  the one-off preparation cost is paid once.
* **text**: one ``u v`` pair per line (``#`` comments allowed) — the
  lowest common denominator used by most public graph datasets.  "In many
  graph file formats the edge list is already sorted" (§III-A1);
  :func:`load_text_edges` preserves file order and detects sortedness so
  a pre-sorted file skips the global sort.
"""

from __future__ import annotations

from pathlib import Path
import warnings

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.edge_list import EdgeList
from repro.types import VID_DTYPE


def save_binary_edges(edges: EdgeList, path: str | Path) -> None:
    """Write an edge list as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        src=edges.src,
        dst=edges.dst,
        num_vertices=np.int64(edges.num_vertices),
        sorted_by_src=np.bool_(edges.sorted_by_src),
    )


def load_binary_edges(path: str | Path) -> EdgeList:
    """Read an edge list written by :func:`save_binary_edges`."""
    path = Path(path)
    with np.load(path) as archive:
        try:
            src = archive["src"]
            dst = archive["dst"]
            n = int(archive["num_vertices"])
            sorted_flag = bool(archive["sorted_by_src"])
        except KeyError as exc:
            raise GraphConstructionError(
                f"{path} is not a repro edge-list archive (missing {exc})"
            ) from None
    return EdgeList(src=src, dst=dst, num_vertices=n, sorted_by_src=sorted_flag)


def save_text_edges(edges: EdgeList, path: str | Path) -> None:
    """Write one ``u v`` pair per line with a header comment."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# {edges.num_vertices} vertices, {edges.num_edges} edges\n")
        np.savetxt(fh, np.column_stack([edges.src, edges.dst]), fmt="%d")


def load_text_edges(path: str | Path, *, num_vertices: int | None = None) -> EdgeList:
    """Read a whitespace-separated ``u v`` file (``#`` comments skipped).

    File order is preserved; if the sources happen to be non-decreasing the
    result is flagged sorted, so edge-list partitioning skips the re-sort.
    """
    path = Path(path)
    with warnings.catch_warnings():
        # an all-comment/empty file is a legitimate empty edge list, not a
        # condition to warn about
        warnings.filterwarnings("ignore", message=".*input contained no data.*")
        data = np.loadtxt(path, dtype=VID_DTYPE, comments="#", ndmin=2)
    if data.size == 0:
        empty = np.empty(0, dtype=VID_DTYPE)
        return EdgeList(src=empty, dst=empty.copy(), num_vertices=num_vertices or 0)
    if data.shape[1] != 2:
        raise GraphConstructionError(
            f"{path}: expected 2 columns per line, got {data.shape[1]}"
        )
    src, dst = data[:, 0].copy(), data[:, 1].copy()
    if num_vertices is None:
        num_vertices = int(max(src.max(), dst.max())) + 1
    is_sorted = bool(np.all(src[1:] >= src[:-1])) if src.size > 1 else True
    return EdgeList(src=src, dst=dst, num_vertices=num_vertices, sorted_by_src=is_sorted)
