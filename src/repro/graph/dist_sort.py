"""Simulated distributed sample sort of the edge list.

"Requiring the edge list to be globally sorted is an additional step that
is not needed by 1D or 2D graph partitioning.  This is not an onerous
requirement, because there are numerous distributed memory and external
memory sorting algorithms" (§III-A1).  This module makes that setup step
concrete and accountable: a classic *sample sort* over ``p`` ranks —
local sort, splitter sampling, all-to-all bucket exchange, local merge —
executed for real on NumPy arrays with the communication and computation
charged to a machine model.

The returned cost lets the benchmark harness report how the one-off sort
compares to a single traversal (it is amortised across the many traversals
a resident graph serves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import MachineModel
from repro.utils.rng import resolve_rng
from repro.utils.stats import imbalance

#: CPU cost of one comparison in the local sorts, microseconds.  NumPy's
#: radix-ish sorts are far faster per element than a generic comparison
#: sort; this constant reflects an optimised local sort.
SORT_COMPARE_US = 0.002
#: Bytes per edge on the wire (src + dst, 8 bytes each).
EDGE_BYTES = 16


@dataclass(frozen=True)
class SampleSortResult:
    """Outcome of the simulated distributed sort."""

    edges: EdgeList
    #: simulated wall time of the whole sort
    time_us: float
    #: max/mean of post-exchange bucket sizes (sampling quality)
    bucket_imbalance: float
    #: total bytes moved in the all-to-all exchange
    exchange_bytes: int
    #: splitters chosen (p - 1 of them)
    splitters: np.ndarray


def sample_sort_edges(
    edges: EdgeList,
    num_ranks: int,
    machine: MachineModel,
    *,
    oversample: int = 8,
    seed: int | np.random.Generator | None = 0,
) -> SampleSortResult:
    """Globally sort ``edges`` by source across ``num_ranks`` simulated ranks.

    Phases (each charged to the machine model, with per-phase time taken as
    the *maximum* over ranks — the critical path):

    1. each rank sorts its local slice of the unsorted edge list,
    2. each rank contributes ``oversample`` source samples; the root picks
       ``p - 1`` splitters,
    3. all-to-all: each edge travels to the rank owning its splitter bucket,
    4. each rank merges its received buckets.

    Returns the globally sorted edge list (bit-identical to
    ``edges.sorted_by_source()``) plus the simulated cost.
    """
    p = num_ranks
    m = edges.num_edges
    if p < 1:
        raise PartitioningError(f"need at least 1 rank, got {p}")
    if m == 0:
        return SampleSortResult(
            edges=edges.sorted_by_source(), time_us=0.0, bucket_imbalance=1.0,
            exchange_bytes=0, splitters=np.empty(0, dtype=np.int64),
        )
    rng = resolve_rng(seed)

    bounds = (np.arange(p + 1, dtype=np.int64) * m) // p
    local_sizes = np.diff(bounds)

    # Phase 1: local sorts -- n log n comparisons on the largest slice.
    largest = int(local_sizes.max())
    t_local_sort = largest * max(1.0, np.log2(max(largest, 2))) * SORT_COMPARE_US

    # Phase 2: splitter sampling (tiny gather; p * oversample samples).
    samples = []
    for r in range(p):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        if hi > lo:
            idx = rng.integers(lo, hi, size=min(oversample, hi - lo))
            samples.append(edges.src[idx])
    all_samples = np.sort(np.concatenate(samples))
    picks = (np.arange(1, p) * all_samples.size) // p
    splitters = all_samples[picks]
    t_sample = (
        p * oversample * 8 * machine.byte_us
        + np.ceil(np.log2(max(p, 2))) * (machine.packet_overhead_us + machine.hop_latency_us)
    )

    # Phase 3: all-to-all bucket exchange.  Edge -> bucket by splitter.
    dest = np.searchsorted(splitters, edges.src, side="right")
    bucket_sizes = np.bincount(dest, minlength=p)
    # every edge not already on its destination rank crosses the wire
    stay_home = np.zeros(m, dtype=bool)
    for r in range(p):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        stay_home[lo:hi] = dest[lo:hi] == r
    moved = int(np.count_nonzero(~stay_home))
    exchange_bytes = moved * EDGE_BYTES
    # per-rank send cost; critical path ~ the heaviest receiving bucket
    heaviest = int(bucket_sizes.max())
    t_exchange = (
        heaviest * EDGE_BYTES * machine.byte_us
        + (p - 1) * machine.packet_overhead_us
        + 2 * machine.hop_latency_us
    )

    # Phase 4: local merge of p sorted runs on the heaviest bucket.
    t_merge = heaviest * max(1.0, np.log2(max(p, 2))) * SORT_COMPARE_US

    sorted_edges = edges.sorted_by_source()
    return SampleSortResult(
        edges=sorted_edges,
        time_us=float(t_local_sort + t_sample + t_exchange + t_merge),
        bucket_imbalance=imbalance(bucket_sizes),
        exchange_bytes=exchange_bytes,
        splitters=splitters.astype(np.int64),
    )
