"""Edge list partitioning (Section III-A1) — the paper's data layout.

"To maintain a balance of edges across p partitions ... the graph's edge
list is first sorted by the edges' source vertex, then evenly distributed.
This causes many of the adjacency lists (including hubs) to be partitioned
across multiple consecutive partitions."

Partition ``i`` receives the edge slice ``[i*m//p, (i+1)*m//p)`` of the
globally sorted edge list, so edge balance is perfect by construction.  A
vertex whose adjacency list crosses a slice boundary is *split*: the
partition holding the first edge is the **master** (``min_owner``), all
later partitions holding its edges are **replicas**, forming a contiguous
chain up to ``max_owner``.  Each partition holding ``v`` also holds
algorithm state for ``v`` ("state is replicated for vertices whose
adjacency list spans multiple partitions").

The global number of split adjacency lists is bounded by ``O(p)`` — each
partition contributes at most two (one at each slice boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitioningError
from repro.graph.edge_list import EdgeList
from repro.types import VID_DTYPE
from repro.utils import bitpack


@dataclass(frozen=True)
class EdgeListPartitioning:
    """The sorted-edge-list decomposition plus owner directories."""

    num_vertices: int
    num_partitions: int
    #: edge_bounds[i] .. edge_bounds[i+1] is partition i's slice of the
    #: sorted edge list (len p + 1).
    edge_bounds: np.ndarray
    #: cut_sources[i] = source of the first edge in partition i (len p).
    cut_sources: np.ndarray
    #: Per-vertex master partition (len n).
    min_owners: np.ndarray
    #: Per-vertex last replica partition (len n).
    max_owners: np.ndarray
    #: state_lo[i] .. state_hi[i] (inclusive) is the contiguous vertex range
    #: partition i stores state for.
    state_lo: np.ndarray = field(repr=False)
    state_hi: np.ndarray = field(repr=False)

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, edges: EdgeList, num_partitions: int) -> EdgeListPartitioning:
        """Partition a source-sorted edge list into ``num_partitions`` slices.

        ``edges`` must already be sorted by source
        (:meth:`EdgeList.sorted_by_source`); an unsorted list is rejected
        rather than silently re-sorted so callers account for the global
        sort the paper calls out as edge-list partitioning's extra step.
        """
        p = num_partitions
        n, m = edges.num_vertices, edges.num_edges
        if p < 1:
            raise PartitioningError(f"need at least 1 partition, got {p}")
        if m < p:
            raise PartitioningError(
                f"cannot split {m} edges into {p} non-empty slices"
            )
        if not edges.sorted_by_src:
            src = edges.src
            if src.size > 1 and np.any(src[1:] < src[:-1]):
                raise PartitioningError(
                    "edge list partitioning requires a source-sorted edge list; "
                    "call EdgeList.sorted_by_source() first"
                )
        src = edges.src

        bounds = (np.arange(p + 1, dtype=VID_DTYPE) * m) // p
        cut_sources = src[bounds[:-1]]

        all_v = np.arange(n, dtype=VID_DTYPE)
        first_edge = np.searchsorted(src, all_v, side="left")
        last_edge = np.searchsorted(src, all_v, side="right")
        has_edges = first_edge < last_edge

        # Owner of an edge index: the slice containing it.
        def edge_owner(e: np.ndarray) -> np.ndarray:
            return np.clip(np.searchsorted(bounds, e, side="right") - 1, 0, p - 1)

        home = np.clip(np.searchsorted(cut_sources, all_v, side="right") - 1, 0, p - 1)
        min_owners = np.where(has_edges, edge_owner(first_edge), home).astype(VID_DTYPE)
        max_owners = np.where(has_edges, edge_owner(last_edge - 1), home).astype(VID_DTYPE)

        state_lo = cut_sources.copy()
        state_lo[0] = 0
        state_hi = np.empty(p, dtype=VID_DTYPE)
        last_src_in_slice = src[bounds[1:] - 1]
        if p > 1:
            state_hi[:-1] = np.maximum(last_src_in_slice[:-1], cut_sources[1:] - 1)
        state_hi[-1] = n - 1
        return cls(
            num_vertices=n,
            num_partitions=p,
            edge_bounds=bounds,
            cut_sources=cut_sources.astype(VID_DTYPE),
            min_owners=min_owners,
            max_owners=max_owners,
            state_lo=state_lo.astype(VID_DTYPE),
            state_hi=state_hi,
        )

    # ------------------------------------------------------------------ #
    # Partition-related operations from Section III-A1
    # ------------------------------------------------------------------ #
    def min_owner(self, v: int) -> int:
        """Minimum partition rank containing source vertex ``v`` — the
        master partition."""
        return int(self.min_owners[v])

    def max_owner(self, v: int) -> int:
        """Maximum partition rank containing source vertex ``v``."""
        return int(self.max_owners[v])

    def min_owner_by_search(self, v: int, src_sorted: np.ndarray) -> int:
        """The ``O(lg p)`` binary-search variant of :meth:`min_owner` the
        paper mentions as the alternative to storing owners in the
        identifier (kept for cross-validation)."""
        first_edge = int(np.searchsorted(src_sorted, v, side="left"))
        last_edge = int(np.searchsorted(src_sorted, v, side="right"))
        if first_edge == last_edge:
            return int(
                np.clip(np.searchsorted(self.cut_sources, v, side="right") - 1, 0,
                        self.num_partitions - 1)
            )
        return int(
            np.clip(np.searchsorted(self.edge_bounds, first_edge, side="right") - 1, 0,
                    self.num_partitions - 1)
        )

    def is_split(self, v: int) -> bool:
        """True when ``v``'s adjacency list spans multiple partitions."""
        return self.min_owners[v] < self.max_owners[v]

    def split_vertices(self) -> np.ndarray:
        """All vertices with partitioned adjacency lists (``O(p)`` of them)."""
        return np.flatnonzero(self.min_owners < self.max_owners).astype(VID_DTYPE)

    def edge_slice(self, rank: int) -> tuple[int, int]:
        """Half-open edge-index range assigned to ``rank``."""
        return int(self.edge_bounds[rank]), int(self.edge_bounds[rank + 1])

    def state_range(self, rank: int) -> tuple[int, int]:
        """Inclusive vertex range ``[lo, hi]`` whose state ``rank`` stores."""
        return int(self.state_lo[rank]), int(self.state_hi[rank])

    def edge_counts(self) -> np.ndarray:
        """Edges per partition (perfectly balanced by construction)."""
        return np.diff(self.edge_bounds)

    def locators(self) -> np.ndarray:
        """Packed 64-bit locators for every vertex (owner-in-identifier
        representation; see :mod:`repro.utils.bitpack`)."""
        return bitpack.pack(
            np.arange(self.num_vertices, dtype=VID_DTYPE), self.min_owners, self.max_owners
        )

    # ------------------------------------------------------------------ #
    def validate(self, edges: EdgeList) -> None:
        """Check structural invariants against the source edge list.

        Raises :class:`PartitioningError` on the first violation.  Used by
        tests and available to users loading untrusted partitionings.
        """
        p = self.num_partitions
        if self.edge_bounds[0] != 0 or self.edge_bounds[-1] != edges.num_edges:
            raise PartitioningError("edge slices do not tile the edge list")
        if np.any(np.diff(self.edge_bounds) <= 0):
            raise PartitioningError("empty edge slice")
        if np.any(self.min_owners > self.max_owners):
            raise PartitioningError("min_owner > max_owner for some vertex")
        src = edges.src
        for rank in range(p):
            lo, hi = self.edge_slice(rank)
            s_lo, s_hi = self.state_range(rank)
            if int(src[lo]) < s_lo or int(src[hi - 1]) > s_hi:
                raise PartitioningError(
                    f"partition {rank} holds edges outside its state range"
                )
        # Replica chains are contiguous: each rank in [min, max] holds edges.
        for v in self.split_vertices():
            for rank in range(self.min_owner(int(v)), self.max_owner(int(v)) + 1):
                lo, hi = self.edge_slice(rank)
                sl = np.searchsorted(src[lo:hi], v, side="left")
                sr = np.searchsorted(src[lo:hi], v, side="right")
                if sl == sr:
                    raise PartitioningError(
                        f"replica chain of split vertex {int(v)} has a gap at rank {rank}"
                    )
