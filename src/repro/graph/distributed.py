"""The distributed graph facade traversed by the visitor-queue framework.

A :class:`DistributedGraph` owns ``p`` :class:`LocalPartition` objects, each
holding a CSR over one slice of the globally source-sorted edge list (edge
list partitioning) or one contiguous vertex block (the 1D baseline), plus
the owner directories (``min_owner`` / ``max_owner``) and per-partition
ghost candidate sets.

Both partitioning strategies present the same interface, so the same
visitor-queue code runs against either — that is what makes the Figure 12
comparison (edge list partitioning vs 1D) a pure data-layout experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitioningError
from repro.graph.csr import CSR
from repro.graph.edge_list import EdgeList
from repro.graph.ghosts import select_ghost_candidates
from repro.graph.locator import LocatorDirectory
from repro.graph.partition_1d import OneDPartitioning
from repro.graph.partition_edge_list import EdgeListPartitioning
from repro.types import VID_DTYPE


@dataclass(frozen=True)
class LocalPartition:
    """Everything one simulated rank stores."""

    rank: int
    #: CSR over this partition's edge slice; rows cover the state range.
    csr: CSR
    #: Inclusive vertex range whose algorithm state this rank stores.
    state_lo: int
    state_hi: int
    #: Half-open slice of the global sorted edge list held here.
    edge_lo: int
    edge_hi: int
    #: Locally-selected high in-degree targets eligible for ghosting.
    ghost_candidates: np.ndarray = field(repr=False)

    @property
    def num_state_vertices(self) -> int:
        """Number of vertex-state slots (master + replica + homed)."""
        return self.state_hi - self.state_lo + 1

    @property
    def num_local_edges(self) -> int:
        return self.edge_hi - self.edge_lo

    def holds_vertex(self, v: int) -> bool:
        """True when this rank stores state for ``v``."""
        return self.state_lo <= v <= self.state_hi


class DistributedGraph:
    """A graph partitioned across ``p`` simulated ranks.

    Build with :meth:`build`; the constructor is internal.
    """

    def __init__(
        self,
        *,
        edges: EdgeList,
        strategy: str,
        partitions: list[LocalPartition],
        min_owners: np.ndarray,
        max_owners: np.ndarray,
        elp: EdgeListPartitioning | None = None,
        oned: OneDPartitioning | None = None,
        num_ghosts: int = 0,
    ) -> None:
        self.edges = edges
        self.strategy = strategy
        self.partitions = partitions
        self.min_owners = min_owners
        self.max_owners = max_owners
        #: The build-time per-partition ghost *budget* (checkpointing must
        #: persist this, not the materialized candidate counts, which can
        #: all be smaller than the budget on sparse partitions).
        self.num_ghosts = num_ghosts
        self.elp = elp
        self.oned = oned
        self.global_out_degrees = edges.out_degrees()
        self.locator_directory = (
            LocatorDirectory.from_partitioning(elp) if elp is not None else None
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        edges: EdgeList,
        num_partitions: int,
        *,
        strategy: str = "edge_list",
        num_ghosts: int = 0,
    ) -> DistributedGraph:
        """Partition ``edges`` across ``num_partitions`` ranks.

        ``strategy`` is ``"edge_list"`` (the paper's layout) or ``"1d"``
        (the baseline).  ``num_ghosts`` is the per-partition ghost budget
        ("all other BFS experiments in this work use 256 ghost vertices per
        partition"); ghost *candidates* are selected here, ghost *state* is
        created per traversal by algorithms that declare ghost usage.
        """
        if strategy not in ("edge_list", "1d"):
            raise PartitioningError(f"unknown partitioning strategy {strategy!r}")
        sorted_edges = edges.sorted_by_source()
        src, dst = sorted_edges.src, sorted_edges.dst
        p = num_partitions

        if strategy == "edge_list":
            elp = EdgeListPartitioning.build(sorted_edges, p)
            oned = None
            min_owners, max_owners = elp.min_owners, elp.max_owners
            slices = [elp.edge_slice(r) for r in range(p)]
            ranges = [elp.state_range(r) for r in range(p)]
        else:
            oned = OneDPartitioning.build(sorted_edges.num_vertices, p)
            elp = None
            owners = oned.owner(np.arange(sorted_edges.num_vertices, dtype=VID_DTYPE))
            min_owners = owners.astype(VID_DTYPE)
            max_owners = min_owners
            ranges = []
            slices = []
            for r in range(p):
                vlo, vhi = oned.vertex_range(r)
                ranges.append((vlo, vhi - 1))
                lo = int(np.searchsorted(src, vlo, side="left"))
                hi = int(np.searchsorted(src, vhi, side="left"))
                slices.append((lo, hi))

        partitions = []
        for r in range(p):
            edge_lo, edge_hi = slices[r]
            state_lo, state_hi = ranges[r]
            csr = CSR.from_edges(
                src[edge_lo:edge_hi],
                dst[edge_lo:edge_hi],
                vertex_base=state_lo,
                num_rows=state_hi - state_lo + 1,
            )
            ghost_candidates = select_ghost_candidates(
                dst[edge_lo:edge_hi],
                num_ghosts=num_ghosts,
                rank=r,
                min_owners=min_owners,
            )
            partitions.append(
                LocalPartition(
                    rank=r,
                    csr=csr,
                    state_lo=state_lo,
                    state_hi=state_hi,
                    edge_lo=edge_lo,
                    edge_hi=edge_hi,
                    ghost_candidates=ghost_candidates,
                )
            )
        return cls(
            edges=sorted_edges,
            strategy=strategy,
            partitions=partitions,
            min_owners=min_owners,
            max_owners=max_owners,
            elp=elp,
            oned=oned,
            num_ghosts=num_ghosts,
        )

    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return self.edges.num_vertices

    @property
    def num_edges(self) -> int:
        return self.edges.num_edges

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def min_owner(self, v: int) -> int:
        """Master rank for ``v`` (visitors are always sent here first)."""
        return int(self.min_owners[v])

    def max_owner(self, v: int) -> int:
        """Last replica rank in ``v``'s forwarding chain."""
        return int(self.max_owners[v])

    def is_split(self, v: int) -> bool:
        """True when ``v``'s adjacency list spans multiple partitions."""
        return self.min_owners[v] < self.max_owners[v]

    def degree(self, v: int) -> int:
        """Global out-degree of ``v`` (== undirected degree on a
        symmetrized simple graph)."""
        return int(self.global_out_degrees[v])

    def out_edges_local(self, rank: int, v: int) -> np.ndarray:
        """This rank's slice of ``v``'s adjacency list (possibly empty).

        For edge list partitioning, the union of the slices over
        ``min_owner(v) .. max_owner(v)`` is exactly ``v``'s adjacency list;
        for 1D the single owner holds the whole list.
        """
        part = self.partitions[rank]
        if not part.holds_vertex(v):
            return _EMPTY
        return part.csr.neighbors(v)

    def masters_on(self, rank: int) -> np.ndarray:
        """Vertices mastered by ``rank`` (used to seed whole-graph
        traversals such as k-core and triangle counting)."""
        part = self.partitions[rank]
        rng = np.arange(part.state_lo, part.state_hi + 1, dtype=VID_DTYPE)
        return rng[self.min_owners[rng] == rank]

    def replica_ranks(self, v: int) -> range:
        """The contiguous chain of ranks storing state for ``v``."""
        return range(self.min_owner(v), self.max_owner(v) + 1)


_EMPTY = np.empty(0, dtype=VID_DTYPE)
